package sim

import "fmt"

// naiveArrival implements the Gandiva-style baseline (§V-A): jobs are
// packed onto shared machines with no subtask coordination, no
// performance model, and no spill. Queued jobs are admitted FIFO in
// bundles of NaiveGroupSize; each bundle shares the allocation that its
// largest member would have received alone, so co-location raises
// concurrency on the same machines — the whole point of naive packing.
// Batch submissions are shuffled first so that different seeds explore
// different groupings ("we run all possible cases, and report the best
// and the worst").
//
// Memory is not checked on admission: naive packing discovers
// out-of-memory the hard way, as in Fig. 4.
func (s *Simulator) naiveArrival(id string) {
	s.arrivalQueue = append(s.arrivalQueue, id)
	if !s.arrivalPending {
		s.arrivalPending = true
		s.eng.After(0, s.naivePlace)
	}
}

func (s *Simulator) naivePlace() {
	s.arrivalPending = false
	ids := s.arrivalQueue
	s.arrivalQueue = nil
	if len(ids) == 0 {
		return
	}
	if len(ids) > 1 {
		s.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	}
	s.fifo = append(s.fifo, ids...)
	s.naiveAdmit()
}

// bundleMemFloor is the smallest DoP at which the bundle's combined
// working set stays under the GC overhead limit.
func (s *Simulator) bundleMemFloor(member []string) int {
	capGB := 0.85 * s.cfg.Spec.MemoryGB
	m := 1
	for ; m < s.cfg.Machines; m++ {
		var sum float64
		for _, id := range member {
			sum += s.jobs[id].run.spec.MemoryGB(m, 0)
		}
		if sum <= capGB {
			break
		}
	}
	return m
}

// naiveFinish frees a drained group's machines and admits more bundles.
// Called when a naive group closes.
func (s *Simulator) naiveFinish(g *groupRun) {
	s.freeMachines += g.machines
	s.naiveAdmit()
}

func (s *Simulator) naiveAdmit() {
	if s.inNaiveAdmit {
		return // re-entered via an admission OOM freeing machines
	}
	s.inNaiveAdmit = true
	defer func() { s.inNaiveAdmit = false }()
	for len(s.fifo) > 0 {
		k := s.cfg.NaiveGroupSize
		if k > len(s.fifo) {
			k = len(s.fifo)
		}
		member := s.fifo[:k]
		// Gandiva-style packing: the bundle shares the allocation its
		// largest member would have received alone — co-location raises
		// job concurrency on the same machines — grown as needed so the
		// combined datasets have a chance of fitting in memory (any
		// operator provisions for footprint, even without a performance
		// model). OOM remains possible: the floor leaves no headroom for
		// working-set growth, and Fig. 4-style overloads still die.
		want := 0
		for _, id := range member {
			if d := s.isolatedDoP(s.jobs[id].run); d > want {
				want = d
			}
		}
		if floor := s.bundleMemFloor(member); floor > want {
			want = floor
		}
		if want > s.cfg.Machines {
			want = s.cfg.Machines
		}
		grant := want
		if grant > s.freeMachines {
			grant = s.freeMachines
		}
		if grant < 1 || grant*3 < want*2 {
			return // head bundle waits for machines (FIFO)
		}
		s.fifo = s.fifo[k:]
		s.freeMachines -= grant
		g := s.newGroupRun(fmt.Sprintf("naive:%s", member[0]), grant, false /* no pipelining */)
		s.groups[g.id] = g
		s.noteGroupCount()
		for _, id := range member {
			if !s.startJobInGroup(id, g, jobRunning) {
				break // the group OOMed on admission
			}
		}
		// An admission OOM kills the whole bundle (Fig. 4: co-located
		// jobs die together); members that never started die with it.
		if g.closed {
			now := s.eng.Now()
			for _, id := range member {
				sj := s.jobs[id]
				if sj.state == jobQueued {
					sj.state = jobFailed
					sj.record.Finish = now
					s.failed[id] = "killed with out-of-memory group"
				}
			}
		}
	}
}
