package sim

import (
	"strings"
	"testing"

	"harmony/internal/simtime"
	"harmony/internal/workload"
)

// tinyJobs builds n fast-converging jobs derived from the base workload
// so end-to-end runs stay quick.
func tinyJobs(n, iters int) []Job {
	specs := workload.Small(n)
	for i := range specs {
		specs[i].Iterations = iters
		// Scale work down ~20x so a full run takes little virtual time
		// (and little test wall time), and shrink the datasets so small
		// test clusters are not memory-bound.
		specs[i].CompMachineSeconds /= 20
		specs[i].NetSeconds /= 20
		specs[i].Data.InputGB /= 10
		specs[i].Data.ModelGB /= 10
		specs[i].WorkGB /= 10
	}
	return Jobs(specs, nil)
}

func mustRun(t *testing.T, cfg Config, jobs []Job) *Result {
	t.Helper()
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatalf("Run(%s): %v", cfg.Mode, err)
	}
	return res
}

func TestIsolatedSingleJob(t *testing.T) {
	jobs := tinyJobs(1, 10)
	res := mustRun(t, Config{Machines: 32, Mode: ModeIsolated, Seed: 1}, jobs)
	if len(res.Records) != 1 {
		t.Fatalf("finished %d jobs, want 1 (failed: %v)", len(res.Records), res.Failed)
	}
	spec := jobs[0].Spec
	// JCT should be near iters * IterSecondsAt(dop) for the chosen DoP.
	jct := res.Records[0].JCT().Seconds()
	if jct <= 0 {
		t.Fatal("non-positive JCT")
	}
	lower := float64(spec.Iterations) * spec.IterSecondsAt(32) * 0.8
	upper := float64(spec.Iterations) * spec.IterSecondsAt(1) * 1.2
	if jct < lower || jct > upper {
		t.Errorf("JCT %.0fs outside plausible [%.0f, %.0f]", jct, lower, upper)
	}
}

func TestIsolatedQueueing(t *testing.T) {
	// More demand than machines: later jobs must queue, so some job's
	// start is after its submit.
	jobs := tinyJobs(8, 6)
	res := mustRun(t, Config{Machines: 8, Mode: ModeIsolated, Seed: 1, IsolatedMaxDoP: 8}, jobs)
	if len(res.Records) != 8 {
		t.Fatalf("finished %d jobs, want 8 (failed: %v)", len(res.Records), res.Failed)
	}
	queued := 0
	for _, r := range res.Records {
		if r.Start > r.Submit {
			queued++
		}
	}
	if queued == 0 {
		t.Error("no job queued despite oversubscribed cluster")
	}
}

func TestIsolatedUtilizationUnderOne(t *testing.T) {
	jobs := tinyJobs(4, 8)
	res := mustRun(t, Config{Machines: 32, Mode: ModeIsolated, Seed: 2}, jobs)
	if res.Summary.CPUUtil <= 0 || res.Summary.CPUUtil > 1.001 {
		t.Errorf("CPU util %.3f out of range", res.Summary.CPUUtil)
	}
	if res.Summary.NetUtil <= 0 || res.Summary.NetUtil > 1.001 {
		t.Errorf("net util %.3f out of range", res.Summary.NetUtil)
	}
}

func TestNaiveBatchCompletes(t *testing.T) {
	jobs := tinyJobs(6, 6)
	res := mustRun(t, Config{Machines: 24, Mode: ModeNaive, Seed: 3}, jobs)
	if len(res.Records)+len(res.Failed) != 6 {
		t.Fatalf("accounted %d jobs, want 6", len(res.Records)+len(res.Failed))
	}
	if len(res.Records) == 0 {
		t.Fatalf("all jobs failed: %v", res.Failed)
	}
}

func TestNaiveOOMWithHeavyJobs(t *testing.T) {
	// Three memory-heavy jobs forced into one group must OOM (Fig. 4).
	nmf, lasso, mlr := workload.Fig4Jobs()
	for _, s := range []*workload.Spec{&nmf, &lasso, &mlr} {
		s.Iterations = 5
		s.CompMachineSeconds /= 20
		s.NetSeconds /= 20
	}
	res := mustRun(t, Config{
		Machines: 16, Mode: ModeNaive, Seed: 1, NaiveGroupSize: 3,
	}, Jobs([]workload.Spec{nmf, lasso, mlr}, nil))
	if len(res.Failed) != 3 {
		t.Errorf("failed %d jobs, want all 3 OOM (records %d)", len(res.Failed), len(res.Records))
	}
	for id, msg := range res.Failed {
		if !strings.Contains(msg, "out of memory") {
			t.Errorf("job %s failed with %q, want OOM", id, msg)
		}
	}
}

func TestHarmonySmallBatchCompletes(t *testing.T) {
	jobs := tinyJobs(6, 8)
	res := mustRun(t, Config{Machines: 24, Mode: ModeHarmony, Seed: 4}, jobs)
	if len(res.Failed) != 0 {
		t.Fatalf("failures under Harmony: %v", res.Failed)
	}
	if len(res.Records) != 6 {
		t.Fatalf("finished %d jobs, want 6", len(res.Records))
	}
	if res.Summary.Makespan <= 0 {
		t.Error("zero makespan")
	}
	if len(res.Decisions) == 0 {
		t.Error("no scheduling decisions recorded")
	}
	if len(res.SchedulingTimes) == 0 {
		t.Error("no scheduling latencies recorded")
	}
}

func TestHarmonyBeatsIsolatedOnComplementaryMix(t *testing.T) {
	jobs := tinyJobs(8, 10)
	iso := mustRun(t, Config{Machines: 16, Mode: ModeIsolated, Seed: 5}, jobs)
	har := mustRun(t, Config{Machines: 16, Mode: ModeHarmony, Seed: 5}, jobs)
	if len(har.Records) != 8 || len(iso.Records) != 8 {
		t.Fatalf("incomplete runs: harmony %d, isolated %d (failed %v / %v)",
			len(har.Records), len(iso.Records), har.Failed, iso.Failed)
	}
	if har.Summary.Makespan >= iso.Summary.Makespan {
		t.Errorf("harmony makespan %v >= isolated %v, want speedup",
			har.Summary.Makespan, iso.Summary.Makespan)
	}
	if har.Summary.CPUUtil <= iso.Summary.CPUUtil {
		t.Errorf("harmony CPU util %.2f <= isolated %.2f, want higher",
			har.Summary.CPUUtil, iso.Summary.CPUUtil)
	}
}

func TestHarmonyWithArrivals(t *testing.T) {
	jobs := tinyJobs(6, 6)
	for i := range jobs {
		jobs[i].Arrival = simtime.Time(simtime.Duration(i) * 2 * simtime.Minute)
	}
	res := mustRun(t, Config{Machines: 16, Mode: ModeHarmony, Seed: 6}, jobs)
	if len(res.Records) != 6 {
		t.Fatalf("finished %d jobs, want 6 (failed %v)", len(res.Records), res.Failed)
	}
	// JCTs are measured from submission.
	for _, r := range res.Records {
		if r.Finish <= r.Submit {
			t.Errorf("job %s finished before submission", r.ID)
		}
	}
}

func TestHarmonyDeterministicForSeed(t *testing.T) {
	jobs := tinyJobs(5, 5)
	a := mustRun(t, Config{Machines: 12, Mode: ModeHarmony, Seed: 7}, jobs)
	b := mustRun(t, Config{Machines: 12, Mode: ModeHarmony, Seed: 7}, tinyJobs(5, 5))
	if a.Summary.Makespan != b.Summary.Makespan {
		t.Errorf("same seed diverged: %v vs %v", a.Summary.Makespan, b.Summary.Makespan)
	}
}

func TestRunValidation(t *testing.T) {
	jobs := tinyJobs(2, 3)
	if _, err := Run(Config{Machines: 0, Mode: ModeHarmony}, jobs); err == nil {
		t.Error("Run with 0 machines succeeded")
	}
	if _, err := Run(Config{Machines: 4, Mode: Mode(9)}, jobs); err == nil {
		t.Error("Run with bad mode succeeded")
	}
	if _, err := Run(Config{Machines: 4, Mode: ModeHarmony}, nil); err == nil {
		t.Error("Run with no jobs succeeded")
	}
	dup := []Job{jobs[0], jobs[0]}
	if _, err := Run(Config{Machines: 4, Mode: ModeHarmony}, dup); err == nil {
		t.Error("Run with duplicate IDs succeeded")
	}
}

func TestModeString(t *testing.T) {
	if ModeHarmony.String() != "harmony" || ModeIsolated.String() != "isolated" ||
		ModeNaive.String() != "naive" || Mode(0).String() != "Mode(0)" {
		t.Error("mode names wrong")
	}
}
