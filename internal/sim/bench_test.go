package sim

import (
	"testing"

	"harmony/internal/workload"
)

// BenchmarkRunHarmonyBase drives the full discrete-event loop over the
// 80-job base workload — the hot path every experiment exercises. Run
// with -benchmem to track the allocation reductions from task pooling and
// slice reuse in resource.go / harmony.go.
func BenchmarkRunHarmonyBase(b *testing.B) {
	specs := workload.Small(24)
	jobs := Jobs(specs, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Machines: 40, Mode: ModeHarmony, Seed: 1}, jobs); err != nil {
			b.Fatal(err)
		}
	}
}
