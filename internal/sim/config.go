// Package sim is the discrete-event cluster simulator that stands in for
// the paper's 100-machine EC2 testbed. It executes workloads under three
// scheduling regimes — Harmony, dedicated isolation, and naive
// co-location — at subtask granularity, modelling CPU, network, disk and
// memory exactly as DESIGN.md §2 describes.
//
// Each job group is simulated through its representative machine: with
// input data balanced across a group's machines, every machine runs the
// same subtask pipeline in lockstep, so one pipeline per group plus a
// machine-count weight reproduces whole-cluster behaviour.
package sim

import (
	"encoding/json"
	"fmt"

	"harmony/internal/cluster"
	"harmony/internal/core"
	"harmony/internal/simtime"
	"harmony/internal/workload"
)

// Mode selects the scheduling regime to simulate.
type Mode int

// Scheduling regimes compared in the evaluation (§V-A).
const (
	// ModeHarmony runs the full system: subtask pipelining, dynamic
	// grouping via Algorithm 1, and dynamic data reloading.
	ModeHarmony Mode = iota + 1
	// ModeIsolated gives every job a dedicated set of machines sized to
	// keep CPU utilization high (the Optimus/SLAQ-style baseline).
	ModeIsolated
	// ModeNaive co-locates jobs with no subtask coordination, no
	// performance model and no spill (the Gandiva-style baseline).
	ModeNaive
)

func (m Mode) String() string {
	switch m {
	case ModeHarmony:
		return "harmony"
	case ModeIsolated:
		return "isolated"
	case ModeNaive:
		return "naive"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode maps a regime name back to its Mode; it accepts exactly the
// strings String produces.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "harmony":
		return ModeHarmony, nil
	case "isolated":
		return ModeIsolated, nil
	case "naive":
		return ModeNaive, nil
	default:
		return 0, fmt.Errorf("sim: unknown mode %q", s)
	}
}

// MarshalJSON encodes the mode by name so scenario files (replay
// what-ifs, saved configs) stay readable and stable across reorderings
// of the constant block.
func (m Mode) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.String())
}

// UnmarshalJSON accepts either the name or the legacy integer form.
func (m *Mode) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, perr := ParseMode(s)
		if perr != nil {
			return perr
		}
		*m = v
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("sim: mode must be a name or integer: %s", data)
	}
	*m = Mode(n)
	return nil
}

// Defaults for the simulation constants; see Config.
const (
	// DefaultNetBusyFraction is the share of a COMM subtask during which
	// the link actually carries bytes; the rest is server-side request
	// handling that a secondary COMM subtask can overlap (§IV-A).
	DefaultNetBusyFraction = 0.85
	// DefaultJitterFrac is the relative per-iteration noise applied to
	// subtask durations.
	DefaultJitterFrac = 0.04
	// DefaultContentionPenalty is the extra slowdown per additional
	// uncoordinated co-located task in the naive baseline.
	DefaultContentionPenalty = 0.05
	// DefaultProfileIters is how many iterations a new job runs before
	// its metrics count as profiled (profile.MinSamples).
	DefaultProfileIters = 3
	// DefaultDeserSecPerGB is the CPU cost of deserializing reloaded
	// input blocks, added to the COMP subtask (§IV-C).
	DefaultDeserSecPerGB = 3.0
	// DefaultMigrationBaseSeconds is the fixed cost of pausing and
	// migrating one job: checkpointing control state and re-registering
	// with the target group's servers.
	DefaultMigrationBaseSeconds = 20.0
	// DefaultMigrationSecPerModelGB adds the cost of checkpointing and
	// restoring model partitions, which is what Harmony actually moves
	// (§IV-B4: input data is reloaded, not migrated).
	DefaultMigrationSecPerModelGB = 2.0
	// DefaultMemoryTargetLow and ...High bound the heap-occupancy band
	// the α hill-climbing controller steers toward (§IV-C): below the
	// band it reloads less (smaller α), above it spills more.
	DefaultMemoryTargetLow  = 0.55
	DefaultMemoryTargetHigh = 0.70
	// DefaultAlphaStep is the hill-climbing step for α adjustments.
	DefaultAlphaStep = 0.05
)

// AdaptiveAlpha selects the hill-climbing α controller in Config.FixedAlpha.
const AdaptiveAlpha = -1.0

// Config parameterizes one simulation run.
type Config struct {
	// Machines is the cluster size; Spec the machine shape.
	Machines int
	Spec     cluster.MachineSpec
	// Mode selects the scheduling regime.
	Mode Mode
	// Seed drives all stochastic elements (jitter, naive grouping).
	Seed int64
	// JitterFrac is the relative noise on subtask durations (default
	// DefaultJitterFrac; negative disables jitter).
	JitterFrac float64
	// NetBusyFraction overrides DefaultNetBusyFraction when in (0, 1].
	NetBusyFraction float64
	// ContentionPenalty overrides DefaultContentionPenalty when > 0.
	ContentionPenalty float64

	// Pipelining, SmartGrouping and AdaptiveReload gate Harmony's three
	// techniques for the ablation study (§V-C). They are all implied by
	// ModeHarmony unless explicitly disabled via the Disable* fields.
	DisablePipelining    bool
	DisableSmartGrouping bool
	DisableReload        bool

	// DisableSecondaryComm keeps subtask pipelining but runs only one
	// COMM subtask at a time (no secondary filling the primary's idle
	// gaps), for the §IV-A design ablation.
	DisableSecondaryComm bool

	// DisableAlphaTuning keeps spill/reload (jobs still get an
	// occupancy-based initial α and emergency spill escalation) but turns
	// the hill-climbing optimization off — the "no dynamic reloading"
	// rung of the §V-C ablation ladder.
	DisableAlphaTuning bool

	// FixedAlpha, when in [0, 1], pins every job's disk-block ratio α to
	// the same constant (the §V-G baseline). AdaptiveAlpha (-1, the
	// default) selects the hill-climbing controller. Because the zero
	// value means "unset", a deliberate α of exactly 0 needs
	// ExplicitZeroAlpha.
	FixedAlpha        float64
	ExplicitZeroAlpha bool

	// MetricErrorFrac injects multiplicative error into the profiled
	// metrics the scheduler sees, for the model-accuracy sensitivity
	// experiment (Fig. 13a). Zero means faithful profiling.
	MetricErrorFrac float64

	// LinkContention enables the non-work-conserving shared-link physics
	// (netmodel.go): comm subtasks of different jobs that drive the link
	// concurrently lose CollisionLoss of aggregate goodput. Off by
	// default — the primary/secondary discipline of §IV-A applies and
	// existing runs are bit-identical.
	LinkContention bool
	// CollisionLoss is the goodput fraction burned per collision window
	// (default DefaultCollisionLoss when LinkContention is on).
	CollisionLoss float64

	// OraclePlanner replaces Algorithm 1 with the exhaustive-search
	// Oracle of §V-F (simulated annealing beyond its exact range): every
	// scheduling trigger re-plans the whole running and waiting pool.
	OraclePlanner bool

	// NaiveGroupSize is the number of jobs per group in ModeNaive
	// (default 2).
	NaiveGroupSize int

	// IsolatedCPUTarget is the CPU-utilization floor the isolated
	// baseline sizes DoP for (default 0.7), and IsolatedMaxDoP caps the
	// machines per job (default 32).
	IsolatedCPUTarget float64
	IsolatedMaxDoP    int

	// SchedOpts tunes the Harmony scheduler.
	SchedOpts core.Options

	// ProfileIters overrides DefaultProfileIters when > 0.
	ProfileIters int

	// MaxVirtualTime aborts runs that exceed this much simulated time
	// (a safety net against pathological configurations); zero means
	// one simulated year.
	MaxVirtualTime simtime.Duration
}

func (c Config) withDefaults() Config {
	if c.Spec == (cluster.MachineSpec{}) {
		c.Spec = cluster.M42XLarge
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = DefaultJitterFrac
	}
	if c.JitterFrac < 0 {
		c.JitterFrac = 0
	}
	if c.NetBusyFraction <= 0 || c.NetBusyFraction > 1 {
		c.NetBusyFraction = DefaultNetBusyFraction
	}
	if c.ContentionPenalty <= 0 {
		c.ContentionPenalty = DefaultContentionPenalty
	}
	if c.FixedAlpha == 0 && !c.hasFixedAlpha() {
		c.FixedAlpha = AdaptiveAlpha
	}
	if c.CollisionLoss <= 0 || c.CollisionLoss >= 1 {
		c.CollisionLoss = DefaultCollisionLoss
	}
	if c.NaiveGroupSize <= 0 {
		c.NaiveGroupSize = 2
	}
	if c.IsolatedCPUTarget <= 0 || c.IsolatedCPUTarget >= 1 {
		c.IsolatedCPUTarget = 0.7
	}
	if c.IsolatedMaxDoP <= 0 {
		c.IsolatedMaxDoP = 32
	}
	if c.ProfileIters <= 0 {
		c.ProfileIters = DefaultProfileIters
	}
	if c.MaxVirtualTime <= 0 {
		c.MaxVirtualTime = 365 * 24 * simtime.Hour
	}
	if c.SchedOpts.MemoryCapGB == 0 {
		// Plan groups against the GC-safe watermark, not raw capacity:
		// a group that only fits at ~100% heap occupancy would spend
		// most of its CPU in garbage collection (§IV-C).
		c.SchedOpts.MemoryCapGB = DefaultMemoryTargetHigh * c.Spec.MemoryGB
	}
	if c.SchedOpts.MaxJobsPerGroup == 0 {
		// The paper prefers "a smaller number of jobs in a job group for
		// shorter JCTs and lower memory pressure" (§IV-B2); Fig. 12b
		// shows groups of mostly 2-6 jobs.
		c.SchedOpts.MaxJobsPerGroup = 3
	}
	return c
}

// hasFixedAlpha distinguishes "FixedAlpha deliberately 0" from the unset
// zero value.
func (c Config) hasFixedAlpha() bool { return c.ExplicitZeroAlpha }

// Job couples a workload spec with its submission time.
type Job struct {
	Spec    workload.Spec
	Arrival simtime.Time
}

// Jobs builds a Job list from specs and arrival offsets; missing arrivals
// default to time zero.
func Jobs(specs []workload.Spec, arrivals []simtime.Time) []Job {
	out := make([]Job, len(specs))
	for i, s := range specs {
		out[i] = Job{Spec: s}
		if i < len(arrivals) {
			out[i].Arrival = arrivals[i]
		}
	}
	return out
}
