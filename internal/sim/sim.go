package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"harmony/internal/core"
	"harmony/internal/metrics"
	"harmony/internal/profile"
	"harmony/internal/simtime"
)

// ErrDeadline reports that the simulation exceeded Config.MaxVirtualTime.
var ErrDeadline = errors.New("sim: virtual-time deadline exceeded")

// maxAdmissionRejections bounds placement retries before a job is
// declared unschedulable.
const maxAdmissionRejections = 100

// jobState is the lifecycle of §III: waiting → profiling → profiled/
// running/paused → finished (or failed on OOM).
type jobState int

const (
	jobQueued jobState = iota + 1
	jobProfiling
	jobRunning
	jobPaused
	jobFinished
	jobFailed
)

// simJob is the simulator-wide record of one job.
type simJob struct {
	run     *jobRun
	arrival simtime.Time
	state   jobState
	record  metrics.JobRecord
	// profIters counts profiling iterations completed.
	profIters int
	// targetGroup is the signature of the group the job should join when
	// its migration completes.
	targetGroup string
	// migrating marks a pause as migration (counted as regrouping
	// overhead) rather than a stay in the waiting pool.
	migrating bool
	// rejections counts memory-based admission refusals; a job no group
	// can ever absorb is eventually failed rather than retried forever.
	rejections int
}

// PredPair is one predicted-vs-actual sample for the model-accuracy
// analysis (Fig. 13b).
type PredPair struct {
	Predicted float64
	Actual    float64
}

// Err returns the relative prediction error.
func (p PredPair) Err() float64 {
	if p.Actual == 0 {
		return 0
	}
	e := (p.Predicted - p.Actual) / p.Actual
	if e < 0 {
		return -e
	}
	return e
}

// GroupDecision records one group of one scheduling decision, the raw
// data behind Fig. 12.
type GroupDecision struct {
	At       simtime.Time
	Machines int
	Jobs     int
}

// Result is the outcome of a simulation run.
type Result struct {
	Summary metrics.Summary
	Records []metrics.JobRecord
	// Failed maps job IDs to failure descriptions (OOM).
	Failed map[string]string
	Util   *metrics.UtilRecorder

	// Decisions holds every (machines, jobs) group of every scheduling
	// decision (Fig. 12).
	Decisions []GroupDecision
	// IterPred and UPred pair the scheduler's predictions with measured
	// values (Fig. 13b).
	IterPred []PredPair
	UPred    []PredPair
	// SchedulingTimes are the wall-clock durations of scheduler
	// invocations (§V-F).
	SchedulingTimes []time.Duration

	// GCSeconds is total simulated garbage-collection time (§V-B uses GC
	// time as the memory-pressure metric).
	GCSeconds float64
	// StallSeconds is total COMP time lost waiting for block reloads.
	StallSeconds float64
	// ModelSpills counts jobs that needed the model-data spill.
	ModelSpills int
	// PausedSeconds accumulates job-time spent paused for migrations
	// (the regrouping overhead of §V-C).
	PausedSeconds float64
	// PoolWaitSeconds accumulates job-time spent in the waiting pool
	// (paused by a scheduling decision, not by migration).
	PoolWaitSeconds float64
	// LinkCollisionSeconds accumulates time during which two or more
	// comm subtasks drove a shared group link concurrently under
	// Config.LinkContention — the goodput-burning windows network-aware
	// placement exists to shrink. Zero when LinkContention is off.
	LinkCollisionSeconds float64

	// MeanConcurrentJobs and MeanGroups are time-averaged over the run
	// (§V-C reports 27.2 jobs in 6.7 groups).
	MeanConcurrentJobs float64
	MeanGroups         float64

	// AlphaMean/Min/Max summarize final α values of finished jobs (§V-G).
	AlphaMean float64
	AlphaMin  float64
	AlphaMax  float64

	// MeanGroupIterSeconds averages measured group iteration times
	// (the §V-G comparison metric), weighted per sample across all
	// groups over the whole run.
	MeanGroupIterSeconds float64
}

// Simulator executes one configuration. Create with New, drive with Run.
type Simulator struct {
	cfg  Config
	eng  *simtime.Engine
	util *metrics.UtilRecorder
	rng  *rand.Rand

	jobs  map[string]*simJob
	order []string

	profiles  *profile.Store
	estimates map[string]core.JobInfo

	groups   map[string]*groupRun
	jobGroup map[string]string // job id -> group id
	// sortedGroups reuse buffers; no call site holds the returned slice
	// across another sortedGroups call.
	sortIDs    []string
	sortGroups []*groupRun

	// Harmony state.
	plan            core.Plan
	waitingProfiled []string
	arrivalQueue    []string
	arrivalPending  bool
	bootstrapped    bool
	bootstrapWave   map[string]bool

	// Isolated and naive state.
	freeMachines int
	fifo         []string
	inNaiveAdmit bool

	// Accounting.
	records     []metrics.JobRecord
	failed      map[string]string
	decisions   []GroupDecision
	iterPred    []PredPair
	uPred       []PredPair
	schedTimes  []time.Duration
	gcSeconds   float64
	modelSpills int

	pausedSince  map[string]simtime.Time
	pausedTotal  float64
	poolWait     float64
	linkCollided float64

	runningCount   int
	runningIntegr  float64
	groupsIntegr   float64
	lastCountTime  simtime.Time
	planStart      simtime.Time
	planPredCPU    float64
	planPredNet    float64
	planPredValid  bool
	groupPredIter  map[string]float64
	finishedAlphas []float64
	periodSum      float64
	periodN        int
}

// New builds a simulator for the given jobs. Job IDs must be unique.
func New(cfg Config, jobs []Job) (*Simulator, error) {
	cfg = cfg.withDefaults()
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("sim: %d machines, need > 0", cfg.Machines)
	}
	if cfg.Mode < ModeHarmony || cfg.Mode > ModeNaive {
		return nil, fmt.Errorf("sim: unknown mode %d", int(cfg.Mode))
	}
	if len(jobs) == 0 {
		return nil, errors.New("sim: no jobs")
	}
	s := &Simulator{
		cfg:           cfg,
		eng:           simtime.NewEngine(),
		util:          metrics.NewUtilRecorder(cfg.Machines, simtime.Minute),
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		jobs:          make(map[string]*simJob, len(jobs)),
		profiles:      profile.NewStore(profile.DefaultEWMAAlpha),
		estimates:     make(map[string]core.JobInfo),
		groups:        make(map[string]*groupRun),
		jobGroup:      make(map[string]string),
		failed:        make(map[string]string),
		freeMachines:  cfg.Machines,
		pausedSince:   make(map[string]simtime.Time),
		groupPredIter: make(map[string]float64),
	}
	for i, job := range jobs {
		if err := job.Spec.Validate(); err != nil {
			return nil, err
		}
		id := job.Spec.ID
		if _, dup := s.jobs[id]; dup {
			return nil, fmt.Errorf("sim: duplicate job id %q", id)
		}
		jr := &jobRun{
			spec: job.Spec,
			rng:  rand.New(rand.NewSource(cfg.Seed ^ int64(i*2654435761+1))),
		}
		s.jobs[id] = &simJob{run: jr, arrival: job.Arrival, state: jobQueued,
			record: metrics.JobRecord{ID: id, Submit: job.Arrival}}
		s.order = append(s.order, id)
	}
	return s, nil
}

// Run executes the simulation to completion and returns the results.
func Run(cfg Config, jobs []Job) (*Result, error) {
	s, err := New(cfg, jobs)
	if err != nil {
		return nil, err
	}
	return s.run()
}

func (s *Simulator) run() (*Result, error) {
	for _, id := range s.order {
		id := id
		sj := s.jobs[id]
		s.eng.At(sj.arrival, func() { s.onArrival(id) })
	}
	deadline := simtime.Time(s.cfg.MaxVirtualTime)
	if err := s.eng.Run(deadline); err != nil {
		return nil, err
	}
	if s.eng.Len() > 0 || s.unfinishedCount() > 0 {
		if s.eng.Now() >= deadline {
			return nil, fmt.Errorf("%w: %d jobs unfinished at %s",
				ErrDeadline, s.unfinishedCount(), s.eng.Now())
		}
		return nil, fmt.Errorf("sim: stalled with %d unfinished jobs at %s",
			s.unfinishedCount(), s.eng.Now())
	}
	return s.buildResult(), nil
}

func (s *Simulator) unfinishedCount() int {
	n := 0
	for _, sj := range s.jobs {
		if sj.state != jobFinished && sj.state != jobFailed {
			n++
		}
	}
	return n
}

func (s *Simulator) reloadEnabled() bool {
	return s.cfg.Mode == ModeHarmony && !s.cfg.DisableReload
}

func (s *Simulator) pipelined() bool {
	return s.cfg.Mode != ModeNaive && !s.cfg.DisablePipelining
}

// onArrival dispatches a submission to the mode-specific scheduler.
func (s *Simulator) onArrival(id string) {
	switch s.cfg.Mode {
	case ModeHarmony:
		s.harmonyArrival(id)
	case ModeIsolated:
		s.isolatedArrival(id)
	case ModeNaive:
		s.naiveArrival(id)
	}
}

// onIterationComplete is invoked by the group runtime after each PUSH.
func (s *Simulator) onIterationComplete(g *groupRun, j *jobRun) {
	id := j.spec.ID
	sj := s.jobs[id]

	// Feed the profiler with what a worker would report: measured COMP
	// and COMM wall times at the group DoP.
	if s.cfg.Mode == ModeHarmony {
		_ = s.profiles.Observe(id, g.machines, j.lastCompSeconds, j.lastNetSeconds)
	}

	if s.reloadEnabled() && s.cfg.FixedAlpha == AdaptiveAlpha && !s.cfg.DisableAlphaTuning {
		s.adjustAlpha(g, j, j.lastPeriodSeconds)
	}

	if j.iter >= j.spec.Iterations {
		s.finishJob(g, j)
		return
	}

	if sj.state == jobProfiling && sj.profIters < s.cfg.ProfileIters {
		sj.profIters++
		if sj.profIters >= s.cfg.ProfileIters {
			s.onProfiled(id)
			return
		}
	}

	if j.pauseRequested {
		s.applyPause(g, j)
		return
	}
	g.startCycle(j)
}

// finishJob records a completion and hands control to the mode scheduler.
func (s *Simulator) finishJob(g *groupRun, j *jobRun) {
	id := j.spec.ID
	sj := s.jobs[id]
	sj.state = jobFinished
	sj.record.Finish = s.eng.Now()
	s.records = append(s.records, sj.record)
	s.finishedAlphas = append(s.finishedAlphas, j.alpha)
	s.noteCounts(-1)
	g.removeJob(j)
	delete(s.jobGroup, id)

	switch s.cfg.Mode {
	case ModeHarmony:
		s.harmonyFinish(id)
	case ModeIsolated:
		s.isolatedFinish(g)
	case ModeNaive:
		// Remaining jobs keep running with less contention; a drained
		// group returns its machines.
		if g.closed {
			s.naiveFinish(g)
		}
	}
}

// failGroup kills every job of a group (machine-level OOM, §VI).
func (s *Simulator) failGroup(g *groupRun, err error) {
	if g.closed {
		return
	}
	g.closed = true
	now := s.eng.Now()
	for _, j := range g.jobs {
		id := j.spec.ID
		sj := s.jobs[id]
		if sj.state == jobFinished || sj.state == jobFailed {
			continue
		}
		sj.state = jobFailed
		sj.record.Finish = now
		s.failed[id] = err.Error()
		s.noteCounts(-1)
		delete(s.jobGroup, id)
	}
	g.jobs = nil
	s.groupClosed(g)
	switch s.cfg.Mode {
	case ModeIsolated:
		s.isolatedFinish(g)
	case ModeNaive:
		s.naiveFinish(g)
	}
}

// groupClosed removes a drained group from the active set.
func (s *Simulator) groupClosed(g *groupRun) {
	if _, ok := s.groups[g.id]; ok {
		delete(s.groups, g.id)
		s.noteGroupCount()
	}
}

// startJobInGroup places a job into a group run and tracks state. It
// reports false when the group rejects the job for lack of memory; the
// job is left paused/queued for the caller to re-route. The baselines
// force admission (no memory awareness) and may OOM the group instead.
func (s *Simulator) startJobInGroup(id string, g *groupRun, state jobState) bool {
	sj := s.jobs[id]
	force := s.cfg.Mode != ModeHarmony
	s.noteCounts(+1)
	if err := g.addJob(sj.run, force); err != nil {
		s.noteCounts(-1)
		sj.rejections++
		if sj.rejections > maxAdmissionRejections {
			// No group can absorb the job (e.g. a pinned spill ratio
			// leaves its working set larger than any machine): the
			// memory pressure is fatal, as for the low-α runs of §V-G.
			sj.state = jobFailed
			sj.record.Finish = s.eng.Now()
			s.failed[id] = "unschedulable: working set exceeds machine memory"
			delete(s.pausedSince, id)
		}
		return false
	}
	if sj.state == jobFailed {
		// Forced admission OOMed the group, taking this job with it;
		// failGroup already balanced the count.
		return false
	}
	if since, ok := s.pausedSince[id]; ok {
		if sj.migrating {
			s.pausedTotal += s.eng.Now().Sub(since).Seconds()
		} else {
			s.poolWait += s.eng.Now().Sub(since).Seconds()
		}
		delete(s.pausedSince, id)
	}
	sj.migrating = false
	sj.state = state
	sj.run.pauseRequested = false
	if sj.record.Start == 0 && s.eng.Now() > 0 {
		sj.record.Start = s.eng.Now()
	}
	s.jobGroup[id] = g.id
	return true
}

// requestPause asks a running job to stop at its next iteration boundary.
func (s *Simulator) requestPause(id string) {
	sj := s.jobs[id]
	if sj.state != jobRunning && sj.state != jobProfiling {
		return
	}
	sj.run.pauseRequested = true
}

// applyPause takes effect at an iteration boundary.
func (s *Simulator) applyPause(g *groupRun, j *jobRun) {
	id := j.spec.ID
	sj := s.jobs[id]
	g.removeJob(j)
	delete(s.jobGroup, id)
	sj.state = jobPaused
	sj.run.pauseRequested = false
	s.pausedSince[id] = s.eng.Now()
	s.noteCounts(-1)
	if s.cfg.Mode == ModeHarmony {
		s.harmonyPaused(id)
	}
}

// noteCounts integrates the running-job and group counts over time. The
// running count is recomputed from group membership (the ground truth)
// rather than tracked by deltas, so transient state-machine paths cannot
// skew it; the delta argument is kept for call-site readability but the
// count is authoritative.
func (s *Simulator) noteCounts(delta int) {
	_ = delta
	now := s.eng.Now()
	dt := now.Sub(s.lastCountTime).Seconds()
	if dt > 0 {
		s.runningIntegr += float64(s.runningCount) * dt
		s.groupsIntegr += float64(len(s.groups)) * dt
		s.lastCountTime = now
	}
	running := 0
	for _, g := range s.groups {
		running += len(g.jobs)
	}
	s.runningCount = running
}

func (s *Simulator) noteGroupCount() { s.noteCounts(0) }

// groupSignature derives a stable id for a set of job ids and a machine
// count.
func groupSignature(ids []string, machines int) string {
	sorted := make([]string, len(ids))
	copy(sorted, ids)
	sort.Strings(sorted)
	return fmt.Sprintf("m%d:%s", machines, strings.Join(sorted, ","))
}

func (s *Simulator) buildResult() *Result {
	s.noteCounts(0)
	res := &Result{
		Records:         s.records,
		Failed:          s.failed,
		Util:            s.util,
		Decisions:       s.decisions,
		IterPred:        s.iterPred,
		UPred:           s.uPred,
		SchedulingTimes: s.schedTimes,
		GCSeconds:       s.gcSeconds,
		ModelSpills:     s.modelSpills,
		PausedSeconds:   s.pausedTotal,
		PoolWaitSeconds: s.poolWait,

		LinkCollisionSeconds: s.linkCollided,
	}
	res.Summary = metrics.Summarize(s.records, s.util)
	if span := res.Summary.Makespan.Seconds(); span > 0 {
		res.MeanConcurrentJobs = s.runningIntegr / span
		res.MeanGroups = s.groupsIntegr / span
	}
	var stall float64
	for _, sj := range s.jobs {
		stall += sj.run.stallSeconds
	}
	res.StallSeconds = stall
	if len(s.finishedAlphas) > 0 {
		res.AlphaMin, res.AlphaMax = s.finishedAlphas[0], s.finishedAlphas[0]
		var sum float64
		for _, a := range s.finishedAlphas {
			sum += a
			if a < res.AlphaMin {
				res.AlphaMin = a
			}
			if a > res.AlphaMax {
				res.AlphaMax = a
			}
		}
		res.AlphaMean = sum / float64(len(s.finishedAlphas))
	}
	if s.periodN > 0 {
		res.MeanGroupIterSeconds = s.periodSum / float64(s.periodN)
	}
	return res
}
