package sim

import (
	"sort"
	"time"

	"harmony/internal/baseline"
	"harmony/internal/core"
	"harmony/internal/metrics"
	"harmony/internal/simtime"
)

// maxProfilingPerGroup bounds how many unprofiled jobs ride along in one
// group at a time (§IV-B1 deploys new jobs "to a job group with the
// smallest number of machines or a job group that is already profiling
// another new job, to minimize the potential degradation").
const maxProfilingPerGroup = 2

// bootstrapGroupJobs is how many unprofiled jobs share one bootstrap
// group at cold start, before any metrics exist.
const bootstrapGroupJobs = 4

// maxBootstrapJobs bounds the cold-start wave: the master picks jobs up
// from the queue rather than flooding the cluster (§III); the rest profile
// later through ride-along slots in running groups.
const maxBootstrapJobs = 16

// harmonyArrival enqueues a submission and schedules arrival processing
// at the current instant so that batch submissions are handled together.
func (s *Simulator) harmonyArrival(id string) {
	s.arrivalQueue = append(s.arrivalQueue, id)
	if !s.arrivalPending {
		s.arrivalPending = true
		s.eng.After(0, s.processArrivals)
	}
}

// processArrivals places queued jobs for profiling: into existing groups
// when there are any, or into naive bootstrap groups at cold start (§III:
// new jobs are "naively assigned to a group and executed ... to be
// profiled").
func (s *Simulator) processArrivals() {
	s.arrivalPending = false
	if len(s.arrivalQueue) == 0 {
		return
	}
	if len(s.groups) == 0 {
		s.bootstrapGroups()
		return
	}
	var retry []string
	for _, id := range s.arrivalQueue {
		g := s.pickProfilingGroup()
		if g == nil || !s.startJobInGroup(id, g, jobProfiling) {
			if s.jobs[id].state != jobFailed {
				retry = append(retry, id)
			}
			continue
		}
	}
	s.arrivalQueue = retry
	if len(retry) > 0 {
		// Re-attempt when the cluster changes; the next completion or
		// profiling decision will trigger scheduling anyway. Poll at a
		// coarse interval as a fallback.
		if !s.arrivalPending {
			s.arrivalPending = true
			s.eng.After(30*simtime.Second, s.processArrivals)
		}
	}
}

// sortedGroups returns the active groups in stable (id) order, since map
// iteration order would make runs non-reproducible. The returned slice is
// reused by the next call and must not be retained across one — it runs in
// the simulator's scheduling hot path on every decision.
func (s *Simulator) sortedGroups() []*groupRun {
	ids := s.sortIDs[:0]
	for id := range s.groups {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := s.sortGroups[:0]
	for _, id := range ids {
		out = append(out, s.groups[id])
	}
	s.sortIDs = ids
	s.sortGroups = out
	return out
}

// pickProfilingGroup selects the group with the smallest machine count
// that still has profiling headroom.
func (s *Simulator) pickProfilingGroup() *groupRun {
	var best *groupRun
	for _, g := range s.sortedGroups() {
		if g.closed {
			continue
		}
		profiling := 0
		for _, j := range g.jobs {
			if s.jobs[j.spec.ID].state == jobProfiling {
				profiling++
			}
		}
		if profiling >= maxProfilingPerGroup {
			continue
		}
		if best == nil || g.machines < best.machines ||
			(g.machines == best.machines && len(g.jobs) < len(best.jobs)) {
			best = g
		}
	}
	return best
}

// bootstrapGroups cold-starts the cluster: unprofiled jobs are chunked
// into naive groups that both make progress and produce profiles.
func (s *Simulator) bootstrapGroups() {
	ids := s.arrivalQueue
	s.arrivalQueue = nil
	if len(ids) > maxBootstrapJobs {
		s.arrivalQueue = ids[maxBootstrapJobs:]
		ids = ids[:maxBootstrapJobs]
	}
	s.bootstrapWave = make(map[string]bool, len(ids))
	for _, id := range ids {
		s.bootstrapWave[id] = true
	}
	nGroups := (len(ids) + bootstrapGroupJobs - 1) / bootstrapGroupJobs
	if nGroups > s.cfg.Machines {
		nGroups = s.cfg.Machines
	}
	base := s.cfg.Machines / nGroups
	extra := s.cfg.Machines % nGroups
	next := 0
	for gi := 0; gi < nGroups; gi++ {
		m := base
		if gi < extra {
			m++
		}
		count := len(ids) / nGroups
		if gi < len(ids)%nGroups {
			count++
		}
		member := ids[next : next+count]
		next += count
		g := s.newGroupRun(groupSignature(member, m)+":boot", m, s.pipelined())
		s.groups[g.id] = g
		s.noteGroupCount()
		for _, id := range member {
			if !s.startJobInGroup(id, g, jobProfiling) {
				if s.jobs[id].state != jobFailed {
					s.arrivalQueue = append(s.arrivalQueue, id)
				}
			}
		}
		if len(g.jobs) == 0 && !g.closed {
			g.closed = true
			s.groupClosed(g)
		}
	}
	// Leftover and rejected jobs re-enter via the retry path.
	if len(s.arrivalQueue) > 0 && !s.arrivalPending {
		s.arrivalPending = true
		s.eng.After(30*simtime.Second, s.processArrivals)
	}
}

// onProfiled fires when a job has accumulated enough samples (§IV-B1).
// It snapshots the scheduler's estimate (with optional injected error for
// Fig. 13a) and applies the arrival rule of §IV-B4.
func (s *Simulator) onProfiled(id string) {
	s.tracef("profiled %s (bootstrapped=%v waiting=%d)", id, s.bootstrapped, len(s.waitingProfiled))
	sj := s.jobs[id]
	m, _ := s.profiles.Metrics(id)
	est := core.JobInfo{
		ID:            id,
		Comp:          m.CompMachineSeconds,
		Net:           m.NetSeconds,
		InputGB:       sj.run.spec.Data.InputGB,
		ModelGB:       sj.run.spec.Data.ModelGB,
		WorkGB:        sj.run.spec.WorkGB,
		JVMHeapFactor: 2.2,
	}
	if e := s.cfg.MetricErrorFrac; e > 0 {
		est.Comp *= 1 + e*(2*s.rng.Float64()-1)
		est.Net *= 1 + e*(2*s.rng.Float64()-1)
	}
	// Net-aware placement feeds the solver the PULL/PUSH split and the
	// fitted serial COMP floor (Synergy-style sensitivity). Gated so the
	// default scheduler reproduces Eq. 2 exactly.
	if s.cfg.SchedOpts.NetModel {
		est.PullFrac = sj.run.spec.PullFrac
		if sens, ok := s.profiles.Sensitivity(id); ok && sens.Fitted() {
			est.CompFloor = sens.CompFloorSeconds
		}
	}
	s.estimates[id] = est

	if s.bootstrapped {
		if len(s.plan.Groups) == 0 {
			// Every planned job drained while this one profiled; plan
			// from scratch over it and the waiting pool.
			s.fullReschedule()
			sj.state = jobRunning
			s.resumeOrPause(sj)
			return
		}
		// Arrival rule: place the job into the group that maximizes U,
		// or let it wait if no placement improves U (§IV-B4).
		if newPlan, ok := s.timedTryAdd(s.plan, est); ok {
			s.installSingleAddition(id, newPlan)
			s.absorbWaiting()
			return
		}
		// Keep waiting: pause out of the profiling ride-along slot.
		sj.run.pauseRequested = true
		s.applyPause(sj.run.group, sj.run)
		s.ensureProgress()
		return
	}

	// Cold start: keep running in the bootstrap group; once the initial
	// wave is profiled, compute the first real plan. (Jobs still queued
	// behind the wave profile later through ride-along slots.)
	if !s.bootstrapped && s.waveProfiled() {
		s.bootstrapped = true
		sj.state = jobRunning // profiled: a full member from here on
		s.fullReschedule()
		// The reschedule may have asked this very job — idle at its own
		// iteration boundary — to pause for migration; apply that now,
		// otherwise resume cycling in place.
		s.resumeOrPause(sj)
		return
	}
	// Wave profiles outstanding: keep cycling in the bootstrap group.
	sj.state = jobRunning
	s.resumeOrPause(sj)
}

// waveProfiled reports whether every job of the cold-start wave has
// produced a profile (or left the system).
func (s *Simulator) waveProfiled() bool {
	for id := range s.bootstrapWave {
		sj := s.jobs[id]
		if sj.state == jobFinished || sj.state == jobFailed {
			continue
		}
		if _, ok := s.estimates[id]; !ok {
			return false
		}
	}
	return true
}

// resumeOrPause continues a job that sits idle at an iteration boundary:
// it applies a pending pause request or starts the next cycle.
func (s *Simulator) resumeOrPause(sj *simJob) {
	g := sj.run.group
	if g == nil {
		return
	}
	if sj.run.pauseRequested {
		s.applyPause(g, sj.run)
		return
	}
	g.startCycle(sj.run)
}

// installSingleAddition installs a plan that differs from the running
// state only by placing one job into a group. The group grows in place —
// resident jobs are not disturbed — and the new job migrates in. When no
// existing group matches, it falls back to a full plan application.
func (s *Simulator) installSingleAddition(id string, newPlan core.Plan) {
	sj := s.jobs[id]
	gi, ok := newPlan.FindJob(id)
	if !ok {
		s.applyPlan(newPlan)
		return
	}
	target := newPlan.Groups[gi]
	targetSig := groupSignature(jobIDsOf(target), target.Machines)
	s.recordDecision(newPlan)

	g := s.matchGroupForAddition(id, target)
	if g == nil {
		s.applyPlan(newPlan)
		// The added job may be sitting idle at its iteration boundary
		// (it is the caller); a pause requested by applyPlan would never
		// apply on its own.
		if sj.run.group != nil {
			if sj.state == jobProfiling {
				sj.state = jobRunning
			}
			s.resumeOrPause(sj)
		}
		return
	}
	// Rename the group to its new signature and update the members.
	delete(s.groups, g.id)
	g.id = targetSig
	s.groups[targetSig] = g
	for _, j := range g.jobs {
		s.jobGroup[j.spec.ID] = targetSig
	}
	s.plan = newPlan

	if sj.run.group == g {
		// Already riding in the group (it profiled there): just flip to
		// a planned member.
		sj.state = jobRunning
		sj.targetGroup = targetSig
		g.startCycle(sj.run)
		return
	}
	if sj.run.group != nil {
		// At an iteration boundary in another group: pause out first.
		sj.run.pauseRequested = true
		sj.state = jobRunning
		s.applyPause(sj.run.group, sj.run)
	}
	s.migrateJobInto(id, targetSig, target.Machines)
}

// planMembersMatch reports whether a running group's non-profiling
// members are exactly the planned group's job set.
func planMembersMatch(s *Simulator, g *groupRun, planned core.Group) bool {
	want := make(map[string]bool, len(planned.Jobs))
	for _, j := range planned.Jobs {
		want[j.ID] = true
	}
	have := 0
	for _, j := range g.jobs {
		id := j.spec.ID
		if s.jobs[id].state == jobProfiling {
			if want[id] {
				return false // planned member still profiling elsewhere in flow
			}
			continue
		}
		if !want[id] {
			return false
		}
		have++
	}
	return have == len(planned.Jobs)
}

// matchGroupForAddition finds the running group whose planned members are
// exactly the target group's members minus the job being added (profiling
// ride-alongs are ignored), with the same machine count.
func (s *Simulator) matchGroupForAddition(id string, target core.Group) *groupRun {
	want := make(map[string]bool, len(target.Jobs))
	for _, j := range target.Jobs {
		want[j.ID] = true
	}
	for _, g := range s.sortedGroups() {
		if g.closed || g.machines != target.Machines {
			continue
		}
		have := 0
		match := true
		hasID := false
		for _, j := range g.jobs {
			jid := j.spec.ID
			if s.jobs[jid].state == jobProfiling {
				continue // ride-along, not part of the plan
			}
			if !want[jid] {
				match = false
				break
			}
			if jid == id {
				hasID = true
			}
			have++
		}
		if !match {
			continue
		}
		if have == len(target.Jobs) && hasID {
			return g // job already rides here as a member-to-be
		}
		if have == len(target.Jobs)-1 && !hasID {
			return g
		}
	}
	return nil
}

// absorbWaiting pulls waiting profiled jobs into running groups while the
// predicted cluster utilization keeps improving — the scheduler
// "constantly seeks for higher resource utilization U" (§IV-B2). It stops
// at the first non-improving candidate set, leaving the rest waiting.
func (s *Simulator) absorbWaiting() {
	if len(s.plan.Groups) == 0 {
		return
	}
	for {
		bestScore := s.cfg.SchedOpts.Score(s.plan)
		var bestID string
		var bestPlan core.Plan
		improved := false
		for _, id := range s.waitingProfiled {
			est, ok := s.estimates[id]
			if !ok {
				continue
			}
			cand, ok := s.timedTryAdd(s.plan, est)
			if !ok {
				continue
			}
			if sc := s.cfg.SchedOpts.Score(cand); sc > bestScore {
				bestScore, bestID, bestPlan, improved = sc, id, cand, true
			}
		}
		if !improved {
			return
		}
		s.installSingleAddition(bestID, bestPlan)
	}
}

func jobIDsOf(g core.Group) []string {
	ids := make([]string, len(g.Jobs))
	for i, j := range g.Jobs {
		ids[i] = j.ID
	}
	return ids
}

// harmonyPaused routes a paused job: migrating jobs continue into their
// target group, unprofiled jobs go back to the profiling queue, and
// profiled jobs without a destination join the waiting pool.
func (s *Simulator) harmonyPaused(id string) {
	sj := s.jobs[id]
	if sig := sj.targetGroup; sig != "" && sig != s.jobGroup[id] {
		if g, ok := s.groups[sig]; ok && !g.closed {
			s.migrateJobInto(id, sig, g.machines)
			return
		}
	}
	if _, profiled := s.estimates[id]; !profiled {
		s.arrivalQueue = append(s.arrivalQueue, id)
		if !s.arrivalPending {
			s.arrivalPending = true
			s.eng.After(0, s.processArrivals)
		}
		return
	}
	for _, w := range s.waitingProfiled {
		if w == id {
			return
		}
	}
	s.waitingProfiled = append(s.waitingProfiled, id)
}

// harmonyFinish applies the completion rule of §IV-B4.
func (s *Simulator) harmonyFinish(id string) {
	s.tracef("finish %s (waiting=%d running=%d)", id, len(s.waitingProfiled), s.runningCount)
	s.profiles.Forget(id)
	delete(s.estimates, id)
	if _, ok := s.plan.FindJob(id); !ok {
		// Finished while profiling or while paused out of the plan.
		s.ensureProgress()
		return
	}
	waiting := s.waitingEstimates()
	start := time.Now()
	var next core.Plan
	switch {
	case s.cfg.DisableSmartGrouping:
		next = s.shrinkPlanNaive(id, waiting)
	case s.cfg.OraclePlanner:
		next = s.oraclePlanAll(id)
	default:
		next = core.RegroupAfterFinish(s.plan, id, waiting, s.cfg.SchedOpts).Plan
	}
	s.schedTimes = append(s.schedTimes, time.Since(start))
	s.recordDecision(next)
	s.applyPlan(next)
	s.absorbWaiting()
	s.ensureProgress()
}

// oraclePlanAll re-plans the entire pool (running minus the finished job,
// plus the waiting pool) with the exhaustive-search Oracle.
func (s *Simulator) oraclePlanAll(finishedID string) core.Plan {
	var jobs []core.JobInfo
	for _, id := range s.plan.JobIDs() {
		if id == finishedID {
			continue
		}
		if est, ok := s.estimates[id]; ok {
			jobs = append(jobs, est)
		}
	}
	jobs = append(jobs, s.waitingEstimates()...)
	if len(jobs) == 0 {
		return core.Plan{}
	}
	return baseline.Oracle(jobs, s.cfg.Machines, s.cfg.SchedOpts)
}

// waitingEstimates collects scheduler views of the waiting profiled jobs.
// Jobs that a previous decision already placed (for example a job whose
// migration was interrupted and parked) are excluded so no plan can hold
// the same job twice.
func (s *Simulator) waitingEstimates() []core.JobInfo {
	out := make([]core.JobInfo, 0, len(s.waitingProfiled))
	for _, id := range s.waitingProfiled {
		if _, placed := s.plan.FindJob(id); placed {
			continue
		}
		if est, ok := s.estimates[id]; ok {
			out = append(out, est)
		}
	}
	return out
}

// fullReschedule runs Algorithm 1 over every profiled job: running,
// paused and waiting, in that priority order (§IV-B3).
func (s *Simulator) fullReschedule() {
	var jobs []core.JobInfo
	seen := make(map[string]bool)
	appendJob := func(id string) {
		if seen[id] {
			return
		}
		if est, ok := s.estimates[id]; ok {
			seen[id] = true
			jobs = append(jobs, est)
		}
	}
	for _, id := range s.plan.JobIDs() {
		appendJob(id)
	}
	// Jobs currently running in groups (e.g. bootstrap groups that are
	// not part of a plan yet).
	for _, g := range s.sortedGroups() {
		for _, j := range g.jobs {
			if s.jobs[j.spec.ID].state == jobRunning || s.jobs[j.spec.ID].state == jobProfiling {
				appendJob(j.spec.ID)
			}
		}
	}
	for _, id := range s.waitingProfiled {
		appendJob(id)
	}
	if len(jobs) == 0 {
		return
	}
	start := time.Now()
	var plan core.Plan
	switch {
	case s.cfg.DisableSmartGrouping:
		plan = s.naivePlan(jobs, s.cfg.Machines)
	case s.cfg.OraclePlanner:
		plan = baseline.Oracle(jobs, s.cfg.Machines, s.cfg.SchedOpts)
	default:
		plan = core.Schedule(jobs, s.cfg.Machines, s.cfg.SchedOpts)
	}
	s.schedTimes = append(s.schedTimes, time.Since(start))
	if len(plan.Groups) == 0 {
		return
	}
	s.recordDecision(plan)
	s.applyPlan(plan)
}

// timedTryAdd wraps the arrival rule with scheduling-latency accounting.
// With smart grouping disabled it degrades to "join the smallest group".
func (s *Simulator) timedTryAdd(plan core.Plan, job core.JobInfo) (core.Plan, bool) {
	start := time.Now()
	var p core.Plan
	var ok bool
	if s.cfg.DisableSmartGrouping {
		p, ok = naiveAddToSmallestGroup(plan, job)
	} else {
		p, ok = core.TryAddJob(plan, job, s.cfg.SchedOpts)
	}
	s.schedTimes = append(s.schedTimes, time.Since(start))
	return p, ok
}

// applyPlan migrates the cluster onto a new plan. Groups whose signature
// is unchanged keep running untouched. Every other planned job migrates
// individually: running jobs pause at their own iteration boundary and
// rejoin their target group after the migration delay, while "the master
// ... executes the other co-located jobs in the meanwhile, keeping the
// resources busy" (§IV-B4). Jobs planned out pause into the waiting pool.
func (s *Simulator) applyPlan(newPlan core.Plan) {
	// Defensive invariant: a job may appear at most once in a plan.
	// Scheduling-policy bugs would otherwise corrupt group signatures and
	// strand jobs; dropping duplicates keeps the run sound.
	seen := make(map[string]bool, newPlan.NumJobs())
	for gi := range newPlan.Groups {
		jobs := newPlan.Groups[gi].Jobs[:0]
		for _, j := range newPlan.Groups[gi].Jobs {
			if seen[j.ID] {
				continue
			}
			seen[j.ID] = true
			jobs = append(jobs, j)
		}
		newPlan.Groups[gi].Jobs = jobs
	}

	s.samplePlanPrediction(newPlan)
	s.tracef("applyPlan %s", newPlan.String())

	targets := make(map[string]string) // job id -> target signature
	sigMachines := make(map[string]int)
	sigs := make([]string, 0, len(newPlan.Groups))
	for _, g := range newPlan.Groups {
		sig := groupSignature(jobIDsOf(g), g.Machines)
		sigMachines[sig] = g.Machines
		sigs = append(sigs, sig)
		for _, j := range g.Jobs {
			targets[j.ID] = sig
		}
	}
	s.plan = newPlan

	// Adopt in place: an existing group (for example a bootstrap group)
	// whose planned members and machine count already match a planned
	// group just takes the new signature — no one migrates.
	for gi, g := range newPlan.Groups {
		sig := sigs[gi]
		if _, ok := s.groups[sig]; ok {
			continue
		}
		for _, existing := range s.sortedGroups() {
			if existing.closed || existing.machines != g.Machines {
				continue
			}
			if !planMembersMatch(s, existing, g) {
				continue
			}
			delete(s.groups, existing.id)
			existing.id = sig
			s.groups[sig] = existing
			for _, j := range existing.jobs {
				s.jobGroup[j.spec.ID] = sig
			}
			break
		}
	}

	// Instantiate the new groups up front so that migrating jobs have a
	// destination; unchanged groups are simply kept.
	for _, sig := range sigs {
		if g, ok := s.groups[sig]; ok && !g.closed {
			continue
		}
		gr := s.newGroupRun(sig, sigMachines[sig], s.pipelined())
		s.groups[sig] = gr
		s.noteGroupCount()
	}

	// Route every planned job, in plan order for determinism.
	for _, g := range newPlan.Groups {
		sig := groupSignature(jobIDsOf(g), g.Machines)
		for _, pj := range g.Jobs {
			id := pj.ID
			sj := s.jobs[id]
			if sj == nil || sj.state == jobFinished || sj.state == jobFailed {
				continue
			}
			sj.targetGroup = sig
			if s.jobGroup[id] == sig {
				continue // already in place
			}
			switch sj.state {
			case jobRunning, jobProfiling:
				s.requestPause(id) // harmonyPaused migrates it on pause
			case jobPaused:
				s.migrateJobInto(id, sig, sigMachines[sig])
			}
		}
	}

	// Running jobs that the plan no longer places pause out; unprofiled
	// ride-alongs stay wherever their group survives.
	for id, gid := range s.jobGroup {
		if _, planned := targets[id]; planned {
			continue
		}
		sj := s.jobs[id]
		if sj.state != jobRunning && sj.state != jobProfiling {
			continue
		}
		sj.targetGroup = ""
		if sj.state == jobProfiling && sigMachines[gid] > 0 {
			continue // profiling slot in a surviving group
		}
		s.requestPause(id)
	}

	// Sweep empty groups that the plan no longer references (superseded
	// destinations that never received their joiners).
	for sig, g := range s.groups {
		if _, planned := sigMachines[sig]; planned {
			continue
		}
		if len(g.jobs) == 0 && !g.closed {
			g.closed = true
			s.groupClosed(g)
		}
	}
}

// migrateJobInto schedules a job to join a group after its migration
// delay. Jobs that never ran before start immediately.
func (s *Simulator) migrateJobInto(id, sig string, machines int) {
	sj := s.jobs[id]
	if sj.state == jobFinished || sj.state == jobFailed {
		return
	}
	sj.targetGroup = sig
	sj.migrating = true
	// Migration time starts now; any earlier waiting-pool time was a
	// scheduling decision, not regrouping overhead.
	if _, ok := s.pausedSince[id]; ok {
		s.pausedSince[id] = s.eng.Now()
	}
	delay := 0.0
	if sj.run.iter > 0 {
		delay = DefaultMigrationBaseSeconds +
			DefaultMigrationSecPerModelGB*sj.run.spec.Data.ModelGB
	}
	// Remove from waiting pool if present.
	for i, w := range s.waitingProfiled {
		if w == id {
			s.waitingProfiled = append(s.waitingProfiled[:i], s.waitingProfiled[i+1:]...)
			break
		}
	}
	s.eng.After(simtime.FromSeconds(delay), func() {
		s.tracef("migrate-join %s -> %s (state=%d)", id, sig, sj.state)
		if sj.state == jobFinished || sj.state == jobFailed || sj.targetGroup != sig {
			return
		}
		g, ok := s.groups[sig]
		if !ok || g.closed {
			// Target dissolved while migrating (e.g. superseded plan);
			// park the job as waiting.
			if sj.state != jobPaused {
				sj.state = jobPaused
				s.pausedSince[id] = s.eng.Now()
			}
			s.harmonyPaused(id)
			s.ensureProgress()
			return
		}
		if sj.run.group == g {
			return
		}
		if sj.run.group != nil {
			return // still draining; will be handled on pause
		}
		if !s.startJobInGroup(id, g, jobRunning) {
			// The target group cannot absorb the job after all (e.g.
			// ride-alongs grew its footprint); park it as waiting.
			sj.migrating = false
			sj.targetGroup = ""
			sj.state = jobPaused
			if _, ok := s.pausedSince[id]; !ok {
				s.pausedSince[id] = s.eng.Now()
			}
			s.harmonyPaused(id)
			s.ensureProgress()
		}
	})
}

// ensureProgress guards against the cluster going fully idle while jobs
// still wait: if nothing is running and nothing is in flight, force a
// full reschedule over the waiting pool.
func (s *Simulator) ensureProgress() {
	s.tracef("ensureProgress (running=%d waiting=%d)", s.runningCount, len(s.waitingProfiled))
	if s.runningCount > 0 {
		return
	}
	if len(s.waitingProfiled) == 0 {
		return
	}
	s.fullReschedule()
}

// recordDecision logs every group of a scheduling decision (Fig. 12).
func (s *Simulator) recordDecision(p core.Plan) {
	now := s.eng.Now()
	for _, g := range p.Groups {
		s.decisions = append(s.decisions, GroupDecision{
			At: now, Machines: g.Machines, Jobs: len(g.Jobs),
		})
	}
}

// samplePlanPrediction closes out the measurement window of the previous
// plan and opens one for the new plan (Fig. 13b data).
func (s *Simulator) samplePlanPrediction(newPlan core.Plan) {
	now := s.eng.Now()
	// Windows shorter than a few group iterations never settle; sampling
	// them would measure migration transients, not the model.
	const minWindow = 20 * simtime.Minute
	if s.planPredValid && now.Sub(s.planStart) >= minWindow {
		actCPU := s.utilWindowMean(metrics.CPU, s.planStart, now)
		actNet := s.utilWindowMean(metrics.Net, s.planStart, now)
		w := s.cfg.SchedOpts
		_ = w
		predU := 0.7*s.planPredCPU + 0.3*s.planPredNet
		actU := 0.7*actCPU + 0.3*actNet
		if actU > 0 {
			s.uPred = append(s.uPred, PredPair{Predicted: predU, Actual: actU})
		}
	}
	// Close group iteration predictions for groups being dissolved.
	sigs := make([]string, 0, len(s.groupPredIter))
	for sig := range s.groupPredIter {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		pred := s.groupPredIter[sig]
		g, ok := s.groups[sig]
		if !ok || g.closed {
			delete(s.groupPredIter, sig)
			continue
		}
		if g.periodNInit >= 2 {
			s.iterPred = append(s.iterPred, PredPair{Predicted: pred, Actual: g.periodEWMA})
			delete(s.groupPredIter, sig)
		}
	}
	uc, un := newPlan.Util()
	// Scale prediction to whole-cluster terms: groups cover only the
	// machines the plan allocates.
	frac := float64(newPlan.TotalMachines()) / float64(s.cfg.Machines)
	s.planPredCPU = uc * frac
	s.planPredNet = un * frac
	s.planPredValid = true
	s.planStart = now
	for _, g := range newPlan.Groups {
		sig := groupSignature(jobIDsOf(g), g.Machines)
		s.groupPredIter[sig] = g.IterSeconds()
	}
}

// utilWindowMean averages recorded utilization over [from, to).
func (s *Simulator) utilWindowMean(r metrics.Resource, from, to simtime.Time) float64 {
	series := s.util.Series(r)
	interval := s.util.Interval()
	if len(series) == 0 || to <= from {
		return 0
	}
	first := int(int64(from) / int64(interval))
	last := int(int64(to-1) / int64(interval))
	var sum float64
	n := 0
	for b := first; b <= last && b < len(series); b++ {
		sum += series[b]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
