package sim

import "math"

// isolatedDoP sizes the dedicated allocation for one job: the largest DoP
// that keeps predicted CPU utilization at or above the target, because
// "in the isolated approach, we try to maximize the CPU utilization
// rates ... by reducing the network overheads that occur with lower DoP"
// (§V-A). Capped by IsolatedMaxDoP and the cluster size.
func (s *Simulator) isolatedDoP(j *jobRun) int {
	t := s.cfg.IsolatedCPUTarget
	// Tcpu(m)/(Tcpu(m)+Tnet) >= t  =>  m <= Comp*(1-t)/(t*Net).
	net := j.spec.NetSeconds
	m := int(math.Floor(j.spec.CompMachineSeconds * (1 - t) / (t * net)))
	if m < 1 {
		m = 1
	}
	// The dedicated baseline has no spill: the job's input and model must
	// fit in memory, which puts a floor on the machine count.
	capGB := 0.9 * s.cfg.Spec.MemoryGB
	for m < s.cfg.Machines && j.spec.MemoryGB(m, 0) > capGB {
		m++
	}
	if m > s.cfg.IsolatedMaxDoP && j.spec.MemoryGB(s.cfg.IsolatedMaxDoP, 0) <= capGB {
		m = s.cfg.IsolatedMaxDoP
	}
	if m > s.cfg.Machines {
		m = s.cfg.Machines
	}
	return m
}

// isolatedArrival queues the job FIFO and tries to admit from the head.
func (s *Simulator) isolatedArrival(id string) {
	s.fifo = append(s.fifo, id)
	s.isolatedAdmit()
}

// isolatedFinish returns a finished or failed group's machines and admits
// more queued jobs.
func (s *Simulator) isolatedFinish(g *groupRun) {
	s.freeMachines += g.machines
	s.isolatedAdmit()
}

// memFloor is the smallest DoP at which a job's full working set fits in
// memory without spill.
func (s *Simulator) memFloor(j *jobRun) int {
	capGB := 0.9 * s.cfg.Spec.MemoryGB
	m := 1
	for m < s.cfg.Machines && j.spec.MemoryGB(m, 0) > capGB {
		m++
	}
	return m
}

// isolatedAdmit starts queued jobs in FIFO order while machines last. The
// head job accepts a shrunken allocation when at least two thirds of its
// preferred DoP is available (and its data still fits); otherwise it
// waits, blocking the queue (dedicated-allocation semantics).
func (s *Simulator) isolatedAdmit() {
	for len(s.fifo) > 0 {
		id := s.fifo[0]
		sj := s.jobs[id]
		want := s.isolatedDoP(sj.run)
		grant := want
		if grant > s.freeMachines {
			grant = s.freeMachines
		}
		if grant < 1 || grant*3 < want*2 || grant < s.memFloor(sj.run) {
			return
		}
		s.fifo = s.fifo[1:]
		s.freeMachines -= grant
		g := s.newGroupRun("iso:"+id, grant, s.pipelined())
		s.groups[g.id] = g
		s.noteGroupCount()
		s.startJobInGroup(id, g, jobRunning)
	}
}
