package sim

import (
	"math"
	"sort"
	"strings"

	"harmony/internal/cluster"
	"harmony/internal/core"
)

// This file is the simulator half of the network-aware placement layer
// (DESIGN.md §14): a link-contention model that prices comm-window
// collisions between co-located jobs, and the runtime enforcement of the
// scheduler's CASSINI-style phase offsets (core.SolveInterleave) — an
// establishment hold that staggers cycle starts onto the solved offsets
// at every group (re)formation, plus a non-colliding link discipline
// (group.go: comm bursts dispatch FIFO, never into an occupied link)
// that keeps the separation against per-cycle jitter and churn.
//
// The fluid model shares one representative link per group. With the
// default primary/secondary discipline that link is work-conserving, so
// colliding comm windows cost nothing in aggregate and interleaving has
// nothing to win. Real shared links are not work-conserving: concurrent
// PULL/PUSH bursts from different jobs collide in switch queues, and the
// retransmits/head-of-line blocking burn goodput (the congestion premise
// of CASSINI). Config.LinkContention enables that physics.

// DefaultCollisionLoss is the fraction of aggregate link goodput lost
// while k >= 2 comm subtasks from different jobs drive the shared link
// concurrently.
const DefaultCollisionLoss = 0.25

// linkContentionPolicy shares the link fairly among all active comm
// subtasks but burns `loss` of the aggregate goodput whenever two or
// more collide: k active tasks each progress at (1-loss)/k. The split is
// symmetric on purpose — colliding jobs slow down together and stay
// phase-locked, exactly the persistent interference interleaving exists
// to break (an asymmetric split would let the loser slip behind the
// winner and self-resolve).
type linkContentionPolicy struct {
	loss float64
}

func (linkContentionPolicy) maxActive() int { return 0 }
func (p linkContentionPolicy) rates(out []float64) {
	k := len(out)
	if k == 0 {
		return
	}
	r := 1.0
	if k > 1 {
		r = (1 - p.loss) / float64(k)
	}
	for i := range out {
		out[i] = r
	}
}

// LinkModel holds the capacities the network-aware placement reasons
// about: each machine's NIC and the shared uplink a group's machines
// funnel through (oversubscribed, as in a real leaf-spine fabric).
type LinkModel struct {
	// NICGbps is one machine's line rate.
	NICGbps float64
	// GroupGbps is the shared-link capacity available to one group of
	// machines: machines x NIC / Oversubscription.
	GroupGbps float64
	// Oversubscription is the fabric's uplink oversubscription factor.
	Oversubscription float64
}

// DefaultOversubscription matches a common 2:1 leaf-spine fabric.
const DefaultOversubscription = 2.0

// NewLinkModel derives link capacities for a group of machines of the
// given shape. oversub <= 1 selects DefaultOversubscription.
func NewLinkModel(spec cluster.MachineSpec, machines int, oversub float64) LinkModel {
	if oversub <= 1 {
		oversub = DefaultOversubscription
	}
	if machines < 1 {
		machines = 1
	}
	return LinkModel{
		NICGbps:          spec.NetGbps,
		GroupGbps:        spec.NetGbps * float64(machines) / oversub,
		Oversubscription: oversub,
	}
}

// DemandCurve discretizes one job's predicted link demand (Gbps per
// machine) over its group iteration into slots windows: PULL bytes flow
// at the cycle start, PUSH bytes after COMP, matching the profiled
// PULL/PUSH split and period. The curve integrates to the job's total
// per-iteration traffic.
func (lm LinkModel) DemandCurve(info core.JobInfo, machines, slots int) []float64 {
	curve := make([]float64, slots)
	period := groupPeriod([]core.JobInfo{info}, machines)
	if period <= 0 || slots <= 0 {
		return curve
	}
	pf := info.PullFrac
	if pf <= 0 || pf >= 1 {
		pf = 0.5
	}
	net := math.Min(info.Net, period)
	pull := net * pf
	push := net - pull
	comp := info.TcpuAt(machines)
	dt := period / float64(slots)
	// Comm windows saturate the NIC while they run.
	addWindow(curve, 0, pull, dt, lm.NICGbps, period)
	addWindow(curve, pull+comp, push, dt, lm.NICGbps, period)
	return curve
}

// addWindow accumulates gbps over [start, start+width) seconds of the
// circular curve, fractionally at the edges. Slot indices walk as
// integers — a float time accumulator can stall when the final sliver
// rounds to no progress.
func addWindow(curve []float64, start, width, dt, gbps, period float64) {
	if width <= 0 || dt <= 0 || period <= 0 || len(curve) == 0 {
		return
	}
	if width > period {
		width = period
	}
	n := len(curve)
	end := start + width
	first := int(math.Floor(start / dt))
	last := int(math.Ceil(end / dt))
	for s := first; s < last; s++ {
		lo := math.Max(start, float64(s)*dt)
		hi := math.Min(end, float64(s+1)*dt)
		if hi <= lo {
			continue
		}
		curve[((s%n)+n)%n] += gbps * (hi - lo) / dt
	}
}

// GroupDemand sums the member jobs' demand curves — the group's total
// offered load per window against GroupGbps.
func (lm LinkModel) GroupDemand(jobs []core.JobInfo, machines, slots int) []float64 {
	total := make([]float64, slots)
	for _, j := range jobs {
		for i, v := range lm.DemandCurve(j, machines, slots) {
			total[i] += v * float64(machines)
		}
	}
	return total
}

// PredictGroupCompatibility scores how well the jobs' comm windows fit
// the shared link under the solved interleaving: 1 = no window ever
// exceeds capacity, lower = the excess share of total demand. It bridges
// the byte-level capacities onto core's time-domain solver: windows
// whose seconds-domain demand collides are exactly the windows whose
// Gbps demand exceeds the shared link.
func (lm LinkModel) PredictGroupCompatibility(jobs []core.JobInfo, machines int) float64 {
	return core.SolveInterleave(jobs, machines).Compatibility
}

// groupPeriod is Eq. 1 over raw JobInfos (matches core.groupIterSeconds).
func groupPeriod(jobs []core.JobInfo, machines int) float64 {
	var sumComp, sumNet, maxIter float64
	for _, j := range jobs {
		sumComp += j.TcpuAt(machines)
		sumNet += j.Net
		if it := j.IterAt(machines); it > maxIter {
			maxIter = it
		}
	}
	return math.Max(maxIter, math.Max(sumComp, sumNet))
}

// interleaveInfo is the scheduler's view of a job for the phase solver:
// the profiled estimate when one exists, the spec-derived ground truth
// before that. PullFrac always rides along — the solver needs the
// PULL/PUSH split to place windows.
func (s *Simulator) interleaveInfo(j *jobRun) core.JobInfo {
	info, ok := s.estimates[j.spec.ID]
	if !ok {
		info = core.JobInfo{
			ID:   j.spec.ID,
			Comp: j.spec.CompMachineSeconds,
			Net:  j.spec.NetSeconds,
		}
	}
	if info.PullFrac == 0 {
		info.PullFrac = j.spec.PullFrac
	}
	return info
}

// phaseDelay computes how long to hold a job's cycle start so its comm
// windows land on the group's solved phase offsets. The hold is paid
// once per member per solve — the establishment payment of the CASSINI
// circle: a group (re)formation starts every member in phase, and
// without the stagger their first PULL bursts collide on the shared
// link at full collision loss. Once established, the exclusive CPU
// discipline (§IV-A) and the non-colliding link dispatch maintain the
// separation, so steady-state cycles run unthrottled. Zero when the
// net-aware scheduler is off or the job runs alone.
func (g *groupRun) phaseDelay(j *jobRun) float64 {
	s := g.sim
	if !s.cfg.SchedOpts.NetModel || len(g.jobs) < 2 {
		return 0
	}
	if g.ilSig == "" {
		ids := make([]string, len(g.jobs))
		for i, jj := range g.jobs {
			ids[i] = jj.spec.ID
		}
		sort.Strings(ids)
		infos := make([]core.JobInfo, len(g.jobs))
		byID := make(map[string]*jobRun, len(g.jobs))
		for _, jj := range g.jobs {
			byID[jj.spec.ID] = jj
		}
		for i, id := range ids {
			infos[i] = s.interleaveInfo(byID[id])
		}
		il := core.SolveInterleave(infos, g.machines)
		g.ilSig = strings.Join(ids, ",")
		g.ilPeriod = il.Period
		g.ilOffsets = make(map[string]float64, len(ids))
		// Normalize so the earliest slot starts immediately: the circle
		// only fixes relative phases, and idling the whole group by the
		// smallest offset would be pure waste.
		min := math.Inf(1)
		for _, off := range il.Offsets {
			if off < min {
				min = off
			}
		}
		for i, id := range ids {
			g.ilOffsets[id] = il.Offsets[i] - min
		}
		g.ilHeld = make(map[string]bool, len(ids))
		g.ilAnchor = s.eng.Now()
	}
	if g.ilPeriod <= 0 || g.ilHeld[j.spec.ID] {
		return 0
	}
	g.ilHeld[j.spec.ID] = true
	now := s.eng.Now()
	phase := math.Mod(now.Sub(g.ilAnchor).Seconds(), g.ilPeriod)
	delay := g.ilOffsets[j.spec.ID] - phase
	if delay < 0 {
		delay += g.ilPeriod
	}
	return delay
}

// invalidateInterleave drops the cached phase solve; the next cycle
// start re-solves against the new membership and every member pays a
// fresh establishment hold.
func (g *groupRun) invalidateInterleave() {
	g.ilSig = ""
	g.ilOffsets = nil
	g.ilHeld = nil
}
