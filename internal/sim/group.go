package sim

import (
	"errors"
	"math/rand"

	"harmony/internal/memmodel"
	"harmony/internal/metrics"
	"harmony/internal/simtime"
	"harmony/internal/workload"
)

// jobPhase tracks where a job is in its PULL-COMP-PUSH cycle.
type jobPhase int

const (
	phaseIdle jobPhase = iota
	phasePull
	phaseComp
	phasePush
)

// jobRun is the execution state of one job inside a group.
type jobRun struct {
	spec workload.Spec
	rng  *rand.Rand

	iter  int // completed iterations
	phase jobPhase
	group *groupRun

	// alpha is the disk-block ratio α_j (§IV-C): the fraction of this
	// job's input partition spilled to disk.
	alpha float64
	// modelSpilled marks the last-resort model-data spill for jobs whose
	// α=1 still leaves the group over capacity (§V-G).
	modelSpilled bool

	// reloadReadyAt is when the disk-side input blocks for the next COMP
	// will have been reloaded; COMP stalls until then.
	reloadReadyAt simtime.Time

	// cycleStart and lastCycleEnd measure the job's pipeline period.
	cycleStart   simtime.Time
	lastCycleEnd simtime.Time

	// Measured last-iteration subtask times, fed to the profiler.
	lastCompSeconds float64
	lastNetSeconds  float64

	// Accumulated overheads, for the run report.
	gcSeconds    float64
	stallSeconds float64

	// Hill-climbing controller state (§IV-C).
	alphaDir          float64
	alphaPrevPeriod   float64
	alphaProbePeriods []float64
	lastPeriodSeconds float64

	pauseRequested bool
}

// memoryGB is the job's current per-machine heap footprint.
func (j *jobRun) memoryGB(machines int) float64 {
	mem := j.spec.MemoryGB(machines, j.alpha)
	if j.modelSpilled {
		// Model spill keeps only a working fraction of the model
		// resident, at the cost of extra pull traffic.
		mem -= 0.8 * workload.JVMHeapFactor * j.spec.Data.ModelGB / float64(machines)
	}
	return mem
}

func (j *jobRun) jitter(c *Config) float64 {
	if c.JitterFrac <= 0 {
		return 1
	}
	return 1 + c.JitterFrac*(2*j.rng.Float64()-1)
}

// groupRun simulates one job group through its representative machine:
// a CPU resource and a network resource shared by the group's jobs, plus
// disk and memory modelling.
type groupRun struct {
	id       string
	machines int
	jobs     []*jobRun
	cpu      *resource
	net      *resource
	sim      *Simulator

	// periodEWMA tracks the measured group iteration time (per-job
	// pipeline period) for the prediction-error study (Fig. 13b).
	periodEWMA  float64
	periodNInit int
	closed      bool

	// Cached comm-interleaving solve (netmodel.go), valid while ilSig
	// matches the member set; invalidated on addJob/removeJob.
	ilSig     string
	ilPeriod  float64
	ilOffsets map[string]float64
	ilAnchor  simtime.Time
	// ilHeld marks members that already paid their one-time
	// establishment hold under the current solve.
	ilHeld map[string]bool
}

func (s *Simulator) newGroupRun(id string, machines int, pipelined bool) *groupRun {
	g := &groupRun{id: id, machines: machines, sim: s}
	var cpuPolicy, netPolicy sharePolicy
	if pipelined {
		cpuPolicy = exclusivePolicy{}
		switch {
		case s.cfg.LinkContention && s.cfg.SchedOpts.NetModel:
			// Net-aware runtime enforcement of the solved interleaving:
			// never launch a comm burst into an occupied link. Bursts
			// dispatch FIFO — under a compatibility-1 schedule the solved
			// offsets mean a burst always finds the link free, and when
			// windows would have collided the burst waits instead of
			// burning CollisionLoss of goodput (queueing delay <= the
			// collision stretch, so this strictly dominates colliding).
			netPolicy = exclusivePolicy{}
		case s.cfg.LinkContention:
			// Non-work-conserving shared link (netmodel.go): colliding
			// comm windows from different jobs burn aggregate goodput.
			netPolicy = linkContentionPolicy{loss: s.cfg.CollisionLoss}
		case s.cfg.DisableSecondaryComm:
			netPolicy = exclusivePolicy{}
		default:
			netPolicy = primarySecondaryPolicy{busyFraction: s.cfg.NetBusyFraction}
		}
	} else {
		cpuPolicy = fairSharePolicy{penalty: s.cfg.ContentionPenalty}
		netPolicy = fairSharePolicy{penalty: s.cfg.ContentionPenalty}
	}
	g.cpu = newResource(s.eng, cpuPolicy, func(rate float64, from, to simtime.Time) {
		s.util.AddBusyWeighted(metrics.CPU, from, to, rate*float64(g.machines))
	})
	g.net = newResource(s.eng, netPolicy, func(rate float64, from, to simtime.Time) {
		s.util.AddBusyWeighted(metrics.Net, from, to, rate*float64(g.machines))
	})
	if s.cfg.LinkContention {
		g.net.collided = &s.linkCollided
	}
	return g
}

// hasProfilingJobs reports whether any unprofiled ride-along currently
// loads the group beyond its planned membership.
func (g *groupRun) hasProfilingJobs() bool {
	for _, j := range g.jobs {
		if sj, ok := g.sim.jobs[j.spec.ID]; ok && sj.state == jobProfiling {
			return true
		}
	}
	return false
}

// occupancy is the group's heap occupancy on its representative machine.
func (g *groupRun) occupancy() float64 {
	var used float64
	for _, j := range g.jobs {
		used += j.memoryGB(g.machines)
	}
	return memmodel.Occupancy(used, g.sim.cfg.Spec.MemoryGB)
}

// errAdmission distinguishes "newcomer does not fit" from a group-wide
// OOM: the group survives, the newcomer is rejected.
var errAdmission = errors.New("sim: job rejected, group memory full")

// addJob inserts a job into the group and starts its cycle. It applies
// the initial α estimate (§IV-C: "determine the initial value by
// estimating the memory use").
//
// Without force, a newcomer that cannot fit even with full spill is
// rejected with errAdmission and the group is untouched — Harmony's
// memory-aware admission never kills resident jobs. With force (the
// naive and isolated baselines, which have no such awareness), the job
// is added regardless and an overflowing group dies of OOM, as in Fig. 4.
func (g *groupRun) addJob(j *jobRun, force bool) error {
	j.group = g
	j.phase = phaseIdle
	j.lastCycleEnd = 0 // period measurements restart in the new group
	g.jobs = append(g.jobs, j)
	g.invalidateInterleave()
	g.sim.initAlpha(j, g)
	if !g.tryResolveMemory() {
		if !force {
			g.jobs = g.jobs[:len(g.jobs)-1]
			j.group = nil
			return errAdmission
		}
		g.sim.failGroup(g, memmodel.ErrOOM)
		return nil
	}
	g.startCycle(j)
	return nil
}

// removeJob detaches a paused or finished job. It must only be called at
// a cycle boundary, when the job has no subtask in flight.
func (g *groupRun) removeJob(j *jobRun) {
	for i, jj := range g.jobs {
		if jj == j {
			g.jobs = append(g.jobs[:i], g.jobs[i+1:]...)
			break
		}
	}
	g.invalidateInterleave()
	j.group = nil
	if len(g.jobs) == 0 {
		g.closed = true
		g.sim.groupClosed(g)
	}
}

// resolveMemory checks the group against machine memory, escalating
// through input spill (only when reload is enabled) and model spill
// before declaring OOM. It returns false when the group cannot fit; the
// group's jobs are failed.
func (g *groupRun) resolveMemory() bool {
	if g.tryResolveMemory() {
		return true
	}
	g.sim.failGroup(g, memmodel.ErrOOM)
	return false
}

// tryResolveMemory is resolveMemory without the kill: it reports whether
// the group fits after escalating spills.
func (g *groupRun) tryResolveMemory() bool {
	if g.occupancy() <= memmodel.GCOverheadLimitOccupancy {
		return true
	}
	if g.sim.reloadEnabled() && g.sim.cfg.FixedAlpha == AdaptiveAlpha {
		// Spill inputs as far as needed, largest resident input first.
		for g.occupancy() > memmodel.GCOverheadLimitOccupancy {
			var pick *jobRun
			var most float64
			for _, j := range g.jobs {
				resident := (1 - j.alpha) * j.spec.Data.InputGB
				if j.alpha < 1 && resident > most {
					most = resident
					pick = j
				}
			}
			if pick == nil {
				break
			}
			pick.alpha = 1
		}
		// Last resort: spill model data (§V-G).
		for g.occupancy() > memmodel.GCOverheadLimitOccupancy {
			var pick *jobRun
			var most float64
			for _, j := range g.jobs {
				if !j.modelSpilled && j.spec.Data.ModelGB > most {
					most = j.spec.Data.ModelGB
					pick = j
				}
			}
			if pick == nil {
				break
			}
			pick.modelSpilled = true
			g.sim.modelSpills++
		}
	}
	return g.occupancy() <= memmodel.GCOverheadLimitOccupancy
}

// startCycle begins one PULL-COMP-PUSH iteration for the job, first
// holding briefly when the net-aware scheduler solved a phase offset the
// job has drifted off of (CASSINI-style interleaving, netmodel.go).
func (g *groupRun) startCycle(j *jobRun) {
	if g.closed {
		return
	}
	if d := g.phaseDelay(j); d > 0 {
		g.sim.eng.After(simtime.FromSeconds(d), func() { g.startCycleNow(j) })
		return
	}
	g.startCycleNow(j)
}

// startCycleNow is startCycle past the phase stagger. The job may have
// been paused out or migrated during the hold; it only cycles if it
// still belongs here.
func (g *groupRun) startCycleNow(j *jobRun) {
	if g.closed || j.group != g {
		return
	}
	if j.pauseRequested {
		g.sim.applyPause(g, j)
		return
	}
	now := g.sim.eng.Now()
	j.cycleStart = now
	j.phase = phasePull
	c := &g.sim.cfg
	pull := j.spec.TpullAt(g.machines) * j.jitter(c)
	if j.modelSpilled {
		// Spilled model partitions must be paged in on access,
		// inflating pull time.
		pull *= 1.15
	}
	comp := j.spec.TcpuAt(g.machines) * j.jitter(c)
	push := j.spec.TpushAt(g.machines) * j.jitter(c)
	j.lastNetSeconds = pull + push
	g.net.submit(pull, c.NetBusyFraction, func() { g.afterPull(j, comp, push) })
}

func (g *groupRun) afterPull(j *jobRun, comp, push float64) {
	if g.closed {
		return
	}
	now := g.sim.eng.Now()
	if j.reloadReadyAt > now {
		// Input blocks still reloading from disk: the COMP subtask is
		// blocked (§IV-C, "data should be preloaded so as to not block
		// task progress" — this is the penalty when it is not).
		stall := j.reloadReadyAt.Sub(now).Seconds()
		j.stallSeconds += stall
		g.sim.eng.At(j.reloadReadyAt, func() { g.submitComp(j, comp, push) })
		return
	}
	g.submitComp(j, comp, push)
}

func (g *groupRun) submitComp(j *jobRun, comp, push float64) {
	if g.closed {
		return
	}
	if !g.resolveMemory() {
		return
	}
	gcF := memmodel.GCFactor(g.occupancy())
	deser := g.deserSeconds(j)
	dur := comp*(1+gcF) + deser
	j.gcSeconds += comp * gcF
	g.sim.gcSeconds += comp * gcF
	j.lastCompSeconds = dur
	j.phase = phaseComp
	g.cpu.submit(dur, 1, func() { g.afterComp(j, push) })
}

func (g *groupRun) afterComp(j *jobRun, push float64) {
	if g.closed {
		return
	}
	now := g.sim.eng.Now()
	// Kick off the background reload of this job's disk-side blocks for
	// the next iteration; COMP for iteration k+1 cannot start before it
	// completes.
	reload := g.reloadSeconds(j)
	if reload > 0 {
		j.reloadReadyAt = now.Add(simtime.FromSeconds(reload))
		g.sim.util.AddBusyWeighted(metrics.Disk, now, j.reloadReadyAt, float64(g.machines))
	} else {
		j.reloadReadyAt = now
	}
	j.phase = phasePush
	g.net.submit(push, g.sim.cfg.NetBusyFraction, func() { g.afterPush(j) })
}

func (g *groupRun) afterPush(j *jobRun) {
	if g.closed {
		return
	}
	now := g.sim.eng.Now()
	j.iter++
	j.phase = phaseIdle

	// Measure the pipeline period (group iteration time as this job
	// experiences it). Samples during perturbations — the job's first
	// cycle in the group, or profiling ride-alongs loading the group
	// beyond its plan — would not reflect the modelled steady state.
	j.lastPeriodSeconds = 0
	if j.lastCycleEnd > 0 {
		j.lastPeriodSeconds = now.Sub(j.lastCycleEnd).Seconds()
		if !g.hasProfilingJobs() {
			if g.periodNInit == 0 {
				g.periodEWMA = j.lastPeriodSeconds
			} else {
				g.periodEWMA = 0.3*j.lastPeriodSeconds + 0.7*g.periodEWMA
			}
			g.periodNInit++
			g.sim.periodSum += j.lastPeriodSeconds
			g.sim.periodN++
		}
	}
	j.lastCycleEnd = now

	g.sim.onIterationComplete(g, j)
}

// deserSeconds is the CPU cost of deserializing the blocks reloaded for
// this iteration.
func (g *groupRun) deserSeconds(j *jobRun) float64 {
	if j.alpha <= 0 {
		return 0
	}
	gb := j.alpha * j.spec.Data.InputGB / float64(g.machines)
	return gb * DefaultDeserSecPerGB
}

// reloadSeconds is how long the disk needs to stream this job's spilled
// blocks back, with bandwidth shared among the group's reloading jobs.
func (g *groupRun) reloadSeconds(j *jobRun) float64 {
	if j.alpha <= 0 {
		return 0
	}
	reloaders := 0
	for _, jj := range g.jobs {
		if jj.alpha > 0 {
			reloaders++
		}
	}
	if reloaders < 1 {
		reloaders = 1
	}
	gb := j.alpha * j.spec.Data.InputGB / float64(g.machines)
	gbps := g.sim.cfg.Spec.DiskMBps / 1024 / float64(reloaders)
	return gb / gbps
}
