package sim

import (
	"math"
	"testing"

	"harmony/internal/simtime"
)

func TestExclusiveResourceSerializes(t *testing.T) {
	eng := simtime.NewEngine()
	var done []float64
	r := newResource(eng, exclusivePolicy{}, nil)
	r.submit(10, 1, func() { done = append(done, eng.Now().Seconds()) })
	r.submit(5, 1, func() { done = append(done, eng.Now().Seconds()) })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatalf("completed %d tasks, want 2", len(done))
	}
	if math.Abs(done[0]-10) > 1e-6 || math.Abs(done[1]-15) > 1e-6 {
		t.Errorf("completions at %v, want [10, 15] (FIFO, one at a time)", done)
	}
}

func TestPrimarySecondaryOverlap(t *testing.T) {
	const beta = 0.8
	eng := simtime.NewEngine()
	var done []float64
	r := newResource(eng, primarySecondaryPolicy{busyFraction: beta}, nil)
	r.submit(10, beta, func() { done = append(done, eng.Now().Seconds()) })
	r.submit(10, beta, func() { done = append(done, eng.Now().Seconds()) })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Primary finishes at 10 unaffected. Secondary progressed at
	// (1-β)/β = 0.25 for 10s (2.5 done), then promotes to primary and
	// needs 7.5 more: total 17.5.
	if math.Abs(done[0]-10) > 1e-6 {
		t.Errorf("primary finished at %v, want 10 (secondary must yield)", done[0])
	}
	if math.Abs(done[1]-17.5) > 1e-6 {
		t.Errorf("secondary finished at %v, want 17.5", done[1])
	}
}

func TestPrimarySecondaryBusySaturates(t *testing.T) {
	const beta = 0.85
	eng := simtime.NewEngine()
	var busyIntegral float64
	r := newResource(eng, primarySecondaryPolicy{busyFraction: beta},
		func(rate float64, from, to simtime.Time) {
			busyIntegral += rate * to.Sub(from).Seconds()
		})
	r.submit(10, beta, nil)
	r.submit(10, beta, nil)
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// While both run, busy rate is β + (1-β) = 1.0: the secondary fills
	// the primary's idle gaps exactly. After the primary finishes at 10,
	// the promoted task has 10 - 10(1-β)/β left, running solo at busy β.
	want := 10.0 + (10-10*(1-beta)/beta)*beta
	if math.Abs(busyIntegral-want) > 1e-5 {
		t.Errorf("busy integral = %v, want %v", busyIntegral, want)
	}
}

func TestFairShareContention(t *testing.T) {
	const p = 0.1
	eng := simtime.NewEngine()
	var done []float64
	r := newResource(eng, fairSharePolicy{penalty: p}, nil)
	r.submit(10, 1, func() { done = append(done, eng.Now().Seconds()) })
	r.submit(10, 1, func() { done = append(done, eng.Now().Seconds()) })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Both share: rate = 1/(2*1.1) each; both finish at 10*2.2 = 22.
	if math.Abs(done[0]-22) > 1e-6 || math.Abs(done[1]-22) > 1e-6 {
		t.Errorf("completions at %v, want both at 22 (fair share with penalty)", done)
	}
}

func TestFairShareSoloRunsAtFullRate(t *testing.T) {
	eng := simtime.NewEngine()
	var at float64
	r := newResource(eng, fairSharePolicy{penalty: 0.1}, nil)
	r.submit(7, 1, func() { at = eng.Now().Seconds() })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(at-7) > 1e-6 {
		t.Errorf("solo task finished at %v, want 7", at)
	}
}

func TestResourceDoneCanResubmit(t *testing.T) {
	eng := simtime.NewEngine()
	var finish float64
	r := newResource(eng, exclusivePolicy{}, nil)
	r.submit(3, 1, func() {
		r.submit(4, 1, func() { finish = eng.Now().Seconds() })
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(finish-7) > 1e-6 {
		t.Errorf("chained task finished at %v, want 7", finish)
	}
	if !r.idle() {
		t.Error("resource not idle after drain")
	}
}

func TestResourceZeroDuration(t *testing.T) {
	eng := simtime.NewEngine()
	ran := false
	r := newResource(eng, exclusivePolicy{}, nil)
	r.submit(0, 1, func() { ran = true })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("zero-duration task never completed")
	}
}
