package sim

import (
	"math"
	"testing"

	"harmony/internal/cluster"
	"harmony/internal/core"
	"harmony/internal/workload"
)

// TestNewLinkModelCapacities pins the capacity derivation: the shared
// link is the group's aggregate NIC rate divided by the fabric
// oversubscription, with the 2:1 leaf-spine default.
func TestNewLinkModelCapacities(t *testing.T) {
	lm := NewLinkModel(cluster.M42XLarge, 100, 0)
	if lm.NICGbps != cluster.M42XLarge.NetGbps {
		t.Errorf("NIC = %v, want %v", lm.NICGbps, cluster.M42XLarge.NetGbps)
	}
	if lm.Oversubscription != DefaultOversubscription {
		t.Errorf("oversub = %v, want default %v", lm.Oversubscription, DefaultOversubscription)
	}
	want := cluster.M42XLarge.NetGbps * 100 / DefaultOversubscription
	if math.Abs(lm.GroupGbps-want) > 1e-9 {
		t.Errorf("GroupGbps = %v, want %v", lm.GroupGbps, want)
	}
	// A 4:1 fabric halves the shared capacity again.
	lm4 := NewLinkModel(cluster.M42XLarge, 100, 4)
	if math.Abs(lm4.GroupGbps-want/2) > 1e-9 {
		t.Errorf("4:1 GroupGbps = %v, want %v", lm4.GroupGbps, want/2)
	}
}

// TestDemandCurveConservation: a job's windowed demand curve must
// integrate to exactly its per-iteration traffic (NIC rate x comm
// seconds) regardless of where the PULL/PUSH windows land — including
// awkward float periods where a window edge sits within an ulp of a
// slot boundary (regression: the window rasterizer used to stall there).
func TestDemandCurveConservation(t *testing.T) {
	lm := NewLinkModel(cluster.M42XLarge, 16, 0)
	cases := []core.JobInfo{
		{ID: "balanced", Comp: 1600, Net: 60, PullFrac: 0.5},
		{ID: "pull-heavy", Comp: 900, Net: 200, PullFrac: 0.9},
		{ID: "push-wraps", Comp: 53.259245040497234, Net: 41.7, PullFrac: 0.31},
		{ID: "net-bound", Comp: 8, Net: 420, PullFrac: 0.55},
		{ID: "tiny", Comp: 1e-6, Net: 1e-7, PullFrac: 0.5},
	}
	const slots = 64
	for _, info := range cases {
		curve := lm.DemandCurve(info, 16, slots)
		if len(curve) != slots {
			t.Fatalf("%s: %d slots, want %d", info.ID, len(curve), slots)
		}
		period := groupPeriod([]core.JobInfo{info}, 16)
		dt := period / slots
		var integral float64
		for i, v := range curve {
			if v < 0 {
				t.Fatalf("%s: negative demand %v at slot %d", info.ID, v, i)
			}
			integral += v * dt
		}
		want := lm.NICGbps * math.Min(info.Net, period)
		if math.Abs(integral-want) > 1e-6*math.Max(want, 1) {
			t.Errorf("%s: curve integrates to %v Gbit, want %v", info.ID, integral, want)
		}
	}
}

// TestGroupDemandSums: the group curve is the members' curves scaled by
// the machine count, so it integrates to the group's total traffic.
func TestGroupDemandSums(t *testing.T) {
	lm := NewLinkModel(cluster.M42XLarge, 16, 0)
	jobs := []core.JobInfo{
		{ID: "a", Comp: 930, Net: 200, PullFrac: 0.55},
		{ID: "b", Comp: 1400, Net: 380, PullFrac: 0.55},
	}
	const slots = 64
	total := lm.GroupDemand(jobs, 16, slots)
	var integral float64
	for _, v := range total {
		if v < 0 {
			t.Fatal("negative group demand")
		}
		integral += v
	}
	var want float64
	for _, j := range jobs {
		for _, v := range lm.DemandCurve(j, 16, slots) {
			want += v * 16
		}
	}
	if math.Abs(integral-want) > 1e-6*want {
		t.Errorf("group demand %v, want %v (16x member sum)", integral, want)
	}
}

// TestLinkContentionPolicyRates pins the contention physics: a lone comm
// task gets the full link, k colliding tasks split (1-loss) evenly —
// the symmetric split that keeps colliding jobs phase-locked.
func TestLinkContentionPolicyRates(t *testing.T) {
	p := linkContentionPolicy{loss: DefaultCollisionLoss}
	if p.maxActive() != 0 {
		t.Errorf("maxActive = %d, want 0 (unlimited)", p.maxActive())
	}
	one := make([]float64, 1)
	p.rates(one)
	if one[0] != 1 {
		t.Errorf("solo rate = %v, want full link", one[0])
	}
	four := make([]float64, 4)
	p.rates(four)
	want := (1 - DefaultCollisionLoss) / 4
	var agg float64
	for i, r := range four {
		if math.Abs(r-want) > 1e-12 {
			t.Errorf("rate[%d] = %v, want %v", i, r, want)
		}
		agg += r
	}
	if math.Abs(agg-(1-DefaultCollisionLoss)) > 1e-12 {
		t.Errorf("aggregate goodput %v, want %v", agg, 1-DefaultCollisionLoss)
	}
}

// commHeavyJobs builds the contention scenario at test scale: the most
// communication-intensive base jobs, shrunk so runs stay fast.
func commHeavyJobs(n, iters int) []Job {
	specs := workload.CommIntensive()[:n]
	for i := range specs {
		specs[i].Iterations = iters
		specs[i].CompMachineSeconds /= 20
		specs[i].NetSeconds /= 20
		specs[i].Data.InputGB /= 10
		specs[i].Data.ModelGB /= 10
		specs[i].WorkGB /= 10
	}
	return Jobs(specs, nil)
}

// TestLinkContentionRunAtScale is the 100-machine end-to-end gate: with
// the contention physics and the net-aware scheduler both on, a
// comm-heavy batch completes, and the run is deterministic for a seed.
func TestLinkContentionRunAtScale(t *testing.T) {
	cfg := Config{
		Machines:       100,
		Mode:           ModeHarmony,
		Seed:           11,
		LinkContention: true,
		SchedOpts:      core.Options{NetModel: true, MaxJobsPerGroup: 2},
	}
	a := mustRun(t, cfg, commHeavyJobs(12, 8))
	if len(a.Failed) != 0 {
		t.Fatalf("failures under contention: %v", a.Failed)
	}
	if len(a.Records) != 12 {
		t.Fatalf("finished %d jobs, want 12", len(a.Records))
	}
	if a.Summary.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	b := mustRun(t, cfg, commHeavyJobs(12, 8))
	if a.Summary.Makespan != b.Summary.Makespan || a.Summary.MeanJCT != b.Summary.MeanJCT {
		t.Errorf("same seed diverged: makespan %v vs %v, mean JCT %v vs %v",
			a.Summary.Makespan, b.Summary.Makespan, a.Summary.MeanJCT, b.Summary.MeanJCT)
	}
}

// TestLinkContentionDefaultOff: the zero-value config must not take the
// contention branch — existing runs stay bit-identical (determinism
// contract of DESIGN.md §14).
func TestLinkContentionDefaultOff(t *testing.T) {
	base := mustRun(t, Config{Machines: 24, Mode: ModeHarmony, Seed: 4}, tinyJobs(6, 8))
	again := mustRun(t, Config{Machines: 24, Mode: ModeHarmony, Seed: 4, CollisionLoss: 0.9}, tinyJobs(6, 8))
	if base.Summary.Makespan != again.Summary.Makespan {
		t.Error("CollisionLoss changed a run with LinkContention off")
	}
}
