package sim

import (
	"fmt"
	"os"

	"harmony/internal/simtime"
)

// debugResource dumps task state when a same-instant loop is detected.
var debugResource = os.Getenv("SIMTIME_DEBUG_PROGRESS") != ""

// task is one subtask in flight on a resource. Work is measured in
// "elapsed-equivalent seconds": the wall time the subtask would take if it
// ran alone on the resource at rate 1.
type task struct {
	remaining float64 // elapsed-equivalent seconds left
	rate      float64 // current progress per wall second
	// busyPerProgress converts progress to resource busy time: 1.0 for
	// COMP subtasks (the CPU is pegged while computing), NetBusyFraction
	// for COMM subtasks (the link idles while servers process requests).
	busyPerProgress float64
	done            func()
}

// sharePolicy computes the progress rates of the currently active tasks,
// in arrival order. Implementations encode the execution disciplines the
// paper compares.
type sharePolicy interface {
	// maxActive bounds concurrent tasks; 0 means unlimited.
	maxActive() int
	// rates fills out[i] with the progress rate of active task i.
	rates(out []float64)
}

// exclusivePolicy runs one task at a time at full rate: Harmony's COMP
// subtask executor ("a single CPU subtask is executed at a time", §IV-A).
type exclusivePolicy struct{}

func (exclusivePolicy) maxActive() int { return 1 }
func (exclusivePolicy) rates(out []float64) {
	for i := range out {
		out[i] = 1
	}
}

// primarySecondaryPolicy runs up to two tasks: the primary at full rate,
// and a secondary that progresses only through the primary's idle gaps,
// yielding on contention (§IV-A). With busy fraction β, a solo COMM
// subtask leaves (1−β) of the link idle; the secondary claims exactly
// that, so its progress rate is (1−β)/β of nominal.
type primarySecondaryPolicy struct {
	busyFraction float64
}

func (primarySecondaryPolicy) maxActive() int { return 2 }
func (p primarySecondaryPolicy) rates(out []float64) {
	if len(out) > 0 {
		out[0] = 1
	}
	if len(out) > 1 {
		out[1] = (1 - p.busyFraction) / p.busyFraction
	}
}

// fairSharePolicy models uncoordinated co-location (the naive baseline,
// §II-B): k concurrent tasks time-slice the resource and additionally pay
// a contention penalty (cache thrash, connection multiplexing) that grows
// with k.
type fairSharePolicy struct {
	penalty float64
}

func (fairSharePolicy) maxActive() int { return 0 }
func (p fairSharePolicy) rates(out []float64) {
	k := len(out)
	if k == 0 {
		return
	}
	r := 1 / (float64(k) * (1 + p.penalty*float64(k-1)))
	for i := range out {
		out[i] = r
	}
}

// resource is a fluid-flow shared resource (the CPU cores or the network
// link of a group's representative machine). Tasks queue in FIFO order;
// the policy decides how many run and how fast. Progress is advanced
// lazily on every state change and an engine event fires at the earliest
// completion.
type resource struct {
	eng    *simtime.Engine
	policy sharePolicy
	active []*task
	queue  []*task
	last   simtime.Time
	// onBusy integrates resource busy time: called with the busy rate
	// that held over [from, to].
	onBusy func(busyRate float64, from, to simtime.Time)
	// collided, when non-nil, accumulates seconds during which two or
	// more tasks were active concurrently — on a link under the
	// contention policy that is exactly the goodput-burning collision
	// window the net-aware placement tries to avoid.
	collided   *float64
	completion *simtime.Event
	// completeFn is the method value passed to the engine, bound once; a
	// fresh r.complete per reschedule would allocate a closure each time.
	completeFn func()
	rateBuf    []float64
	// free and finBuf recycle task structs and the per-completion finished
	// list. The event loop is single-threaded, so a task returned to free
	// after its done callback can never still be referenced.
	free   []*task
	finBuf []*task
}

func newResource(eng *simtime.Engine, policy sharePolicy, onBusy func(float64, simtime.Time, simtime.Time)) *resource {
	r := &resource{eng: eng, policy: policy, last: eng.Now(), onBusy: onBusy}
	r.completeFn = r.complete
	return r
}

// submit enqueues a subtask with the given solo duration in seconds.
// Non-positive durations complete synchronously on the next event tick.
func (r *resource) submit(soloSeconds, busyPerProgress float64, done func()) {
	if soloSeconds <= 0 {
		soloSeconds = 1e-9
	}
	var t *task
	if n := len(r.free); n > 0 {
		t = r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
	} else {
		t = new(task)
	}
	*t = task{remaining: soloSeconds, busyPerProgress: busyPerProgress, done: done}
	r.advance()
	r.queue = append(r.queue, t)
	r.admit()
	r.reschedule()
}

// idle reports whether nothing is running or queued.
func (r *resource) idle() bool { return len(r.active) == 0 && len(r.queue) == 0 }

// advance integrates progress (and busy time) from the last update to now.
func (r *resource) advance() {
	now := r.eng.Now()
	dt := now.Sub(r.last).Seconds()
	if dt > 0 && len(r.active) > 1 && r.collided != nil {
		*r.collided += dt
	}
	if dt > 0 && len(r.active) > 0 {
		var busyRate float64
		for _, t := range r.active {
			t.remaining -= t.rate * dt
			if t.remaining < 0 {
				t.remaining = 0
			}
			busyRate += t.busyPerProgress * t.rate
		}
		if busyRate > 1 {
			busyRate = 1
		}
		if r.onBusy != nil && busyRate > 0 {
			r.onBusy(busyRate, r.last, now)
		}
	}
	r.last = now
}

// admit moves queued tasks into the active set up to the policy bound and
// refreshes rates.
func (r *resource) admit() {
	max := r.policy.maxActive()
	for (max == 0 || len(r.active) < max) && len(r.queue) > 0 {
		r.active = append(r.active, r.queue[0])
		// Pop by copy-down so the slice keeps its capacity (re-slicing the
		// front leaks it) and the vacated tail slot drops its reference.
		n := len(r.queue)
		copy(r.queue, r.queue[1:])
		r.queue[n-1] = nil
		r.queue = r.queue[:n-1]
	}
	if cap(r.rateBuf) < len(r.active) {
		r.rateBuf = make([]float64, len(r.active))
	}
	rates := r.rateBuf[:len(r.active)]
	r.policy.rates(rates)
	for i, t := range r.active {
		t.rate = rates[i]
	}
}

// reschedule plans the next completion event.
func (r *resource) reschedule() {
	if r.completion != nil {
		// The resource is the event's sole holder, so the canceled struct
		// goes straight back to the engine's freelist.
		r.eng.Cancel(r.completion)
		r.eng.Release(r.completion)
		r.completion = nil
	}
	var next float64 = -1
	for _, t := range r.active {
		if t.rate <= 0 {
			continue
		}
		eta := t.remaining / t.rate
		if next < 0 || eta < next {
			next = eta
		}
	}
	if next < 0 {
		return
	}
	r.completion = r.eng.After(simtime.FromSeconds(next), r.completeFn)
}

// complete fires when at least one active task has drained.
func (r *resource) complete() {
	// The event that fired is r.completion; it already left the queue and
	// nothing else references it.
	r.eng.Release(r.completion)
	r.completion = nil
	if debugResource && r.eng.SameInstant() > 1<<20 {
		for i, t := range r.active {
			fmt.Fprintf(os.Stderr, "  loop task %d: remaining=%g rate=%g busy=%g\n",
				i, t.remaining, t.rate, t.busyPerProgress)
		}
	}
	r.advance()
	finished := r.finBuf[:0]
	kept := r.active[:0]
	for _, t := range r.active {
		// A task also counts as finished when its remaining ETA is below
		// the engine's microsecond resolution — otherwise the completion
		// event would reschedule at the same instant forever.
		if t.remaining <= 1e-9 || (t.rate > 0 && t.remaining/t.rate < 1e-6) {
			finished = append(finished, t)
		} else {
			kept = append(kept, t)
		}
	}
	r.active = kept
	r.admit()
	r.reschedule()
	for _, t := range finished {
		// Recycle before the callback: the struct is unreferenced once it
		// left active, and done may submit again, reusing it immediately.
		done := t.done
		*t = task{}
		r.free = append(r.free, t)
		if done != nil {
			done()
		}
	}
	r.finBuf = finished[:0]
}
