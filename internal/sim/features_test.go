package sim

import (
	"testing"

	"harmony/internal/simtime"
	"harmony/internal/workload"
)

// midJobs builds a moderately sized workload with realistic (unscaled)
// costs; the simulator handles hours of virtual time in milliseconds.
func midJobs(n, iters int) []Job {
	specs := workload.Small(n)
	for i := range specs {
		specs[i].Iterations = iters
	}
	return Jobs(specs, nil)
}

func TestHarmonyPipeliningAblation(t *testing.T) {
	// A resource-bound complementary mix (Fig. 5's setting): pipelining
	// overlaps computation and communication, uncoordinated sharing
	// collides. (On job-bound mixes the two tie — Eq. 1's third term.)
	mk := func(id string, comp, net float64) workload.Spec {
		return workload.Spec{
			ID: id, App: workload.MLR,
			Data:  workload.Dataset{Name: id, InputGB: 4, ModelGB: 1},
			Hyper: "t", PullFrac: 0.5,
			CompMachineSeconds: comp, NetSeconds: net,
			Iterations: 20, WorkGB: 0.5,
		}
	}
	specs := []workload.Spec{
		mk("comp1", 1920, 30), mk("comm1", 240, 130), mk("bal1", 960, 60),
	}
	jobs := Jobs(specs, nil)
	full := mustRun(t, Config{Machines: 16, Mode: ModeHarmony, Seed: 1}, jobs)
	noPipe := mustRun(t, Config{Machines: 16, Mode: ModeHarmony, Seed: 1,
		DisablePipelining: true}, jobs)
	if full.Summary.Makespan >= noPipe.Summary.Makespan {
		t.Errorf("pipelining off should hurt: %v vs %v",
			full.Summary.Makespan, noPipe.Summary.Makespan)
	}
}

func TestHarmonySmartGroupingAblation(t *testing.T) {
	jobs := midJobs(12, 10)
	full := mustRun(t, Config{Machines: 48, Mode: ModeHarmony, Seed: 2}, jobs)
	naiveGroups := mustRun(t, Config{Machines: 48, Mode: ModeHarmony, Seed: 2,
		DisableSmartGrouping: true, FixedAlpha: 0.5}, jobs)
	if len(naiveGroups.Records) != 12 {
		t.Fatalf("grouping ablation failed jobs: %v", naiveGroups.Failed)
	}
	// Model-driven grouping should not lose to arbitrary chunking.
	if full.Summary.Makespan > naiveGroups.Summary.Makespan*105/100 {
		t.Errorf("smart grouping (%v) markedly worse than naive grouping (%v)",
			full.Summary.Makespan, naiveGroups.Summary.Makespan)
	}
}

func TestSecondaryCommAblation(t *testing.T) {
	jobs := midJobs(8, 10)
	full := mustRun(t, Config{Machines: 24, Mode: ModeHarmony, Seed: 3}, jobs)
	noSec := mustRun(t, Config{Machines: 24, Mode: ModeHarmony, Seed: 3,
		DisableSecondaryComm: true}, jobs)
	// Without the secondary COMM lane, network work serializes strictly;
	// makespan cannot improve.
	if noSec.Summary.Makespan < full.Summary.Makespan*98/100 {
		t.Errorf("disabling the secondary COMM lane improved makespan: %v vs %v",
			noSec.Summary.Makespan, full.Summary.Makespan)
	}
}

func TestMetricErrorInjectionDegrades(t *testing.T) {
	jobs := midJobs(10, 10)
	clean := mustRun(t, Config{Machines: 32, Mode: ModeHarmony, Seed: 4}, jobs)
	noisy := mustRun(t, Config{Machines: 32, Mode: ModeHarmony, Seed: 4,
		MetricErrorFrac: 0.3}, jobs)
	// Heavy model error should not make things better (Fig. 13a trend);
	// allow slack for noise.
	if noisy.Summary.Makespan*100 < clean.Summary.Makespan*95 {
		t.Errorf("30%% metric error improved makespan: %v vs %v",
			noisy.Summary.Makespan, clean.Summary.Makespan)
	}
}

func TestOraclePlannerMode(t *testing.T) {
	jobs := midJobs(6, 8)
	res := mustRun(t, Config{Machines: 16, Mode: ModeHarmony, Seed: 5,
		OraclePlanner: true}, jobs)
	if len(res.Records) != 6 {
		t.Fatalf("oracle-planner run failed jobs: %v", res.Failed)
	}
	if len(res.SchedulingTimes) == 0 {
		t.Error("no oracle scheduling latencies recorded")
	}
}

func TestAdaptiveAlphaStaysUnderMemoryCeiling(t *testing.T) {
	specs := workload.ReloadJobs()
	for i := range specs {
		specs[i].Iterations = 12
		specs[i].Data.InputGB *= 0.6
	}
	res := mustRun(t, Config{Machines: 32, Mode: ModeHarmony, Seed: 6}, Jobs(specs, nil))
	if len(res.Failed) != 0 {
		t.Fatalf("adaptive alpha runs must not OOM: %v", res.Failed)
	}
	if res.AlphaMax > 1 || res.AlphaMin < 0 {
		t.Errorf("alpha out of range: [%v, %v]", res.AlphaMin, res.AlphaMax)
	}
}

func TestFixedAlphaExplicitZero(t *testing.T) {
	jobs := midJobs(4, 6)
	res := mustRun(t, Config{Machines: 16, Mode: ModeHarmony, Seed: 7,
		FixedAlpha: 0, ExplicitZeroAlpha: true}, jobs)
	// With small test jobs everything fits: alpha must stay pinned at 0.
	if res.AlphaMax != 0 {
		t.Errorf("explicit zero alpha drifted to %v", res.AlphaMax)
	}
}

func TestPredictionSamplesCollected(t *testing.T) {
	jobs := midJobs(10, 12)
	res := mustRun(t, Config{Machines: 32, Mode: ModeHarmony, Seed: 8}, jobs)
	if len(res.IterPred) == 0 {
		t.Error("no iteration-time prediction samples (Fig. 13b needs them)")
	}
	for _, p := range res.IterPred {
		if p.Predicted <= 0 || p.Actual <= 0 {
			t.Errorf("degenerate prediction sample %+v", p)
		}
	}
}

func TestDecisionsRecordGroupShapes(t *testing.T) {
	jobs := midJobs(10, 10)
	res := mustRun(t, Config{Machines: 40, Mode: ModeHarmony, Seed: 9}, jobs)
	if len(res.Decisions) == 0 {
		t.Fatal("no decisions recorded")
	}
	for _, d := range res.Decisions {
		if d.Machines < 1 || d.Jobs < 1 {
			t.Errorf("degenerate decision %+v", d)
		}
		if d.Jobs > 3 {
			t.Errorf("decision with %d jobs exceeds the default group cap", d.Jobs)
		}
	}
}

func TestRegroupOverheadSmall(t *testing.T) {
	jobs := midJobs(10, 12)
	res := mustRun(t, Config{Machines: 32, Mode: ModeHarmony, Seed: 10}, jobs)
	// §V-C: regrouping overhead below 2% of the overall makespan; allow
	// slack for the small scale.
	frac := res.PausedSeconds / (res.Summary.Makespan.Seconds() * 32)
	if frac > 0.05 {
		t.Errorf("migration overhead %.1f%% of cluster time, want < 5%%", frac*100)
	}
}

func TestStaggeredArrivalsKeepWorking(t *testing.T) {
	specs := workload.Small(8)
	for i := range specs {
		specs[i].Iterations = 8
	}
	jobs := Jobs(specs, nil)
	for i := range jobs {
		jobs[i].Arrival = simtime.Time(simtime.Duration(i) * 10 * simtime.Minute)
	}
	res := mustRun(t, Config{Machines: 24, Mode: ModeHarmony, Seed: 11}, jobs)
	if len(res.Records) != 8 {
		t.Fatalf("finished %d of 8 (failed %v)", len(res.Records), res.Failed)
	}
	// Later arrivals must not start before submission.
	for _, r := range res.Records {
		if r.Start < r.Submit {
			t.Errorf("job %s started before submission", r.ID)
		}
	}
}

func TestIsolatedDoPRespectsTargets(t *testing.T) {
	s, err := New(Config{Machines: 64, Mode: ModeIsolated, Seed: 1}, midJobs(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, sj := range s.jobs {
		m := s.isolatedDoP(sj.run)
		if m < 1 || m > 64 {
			t.Fatalf("isolated DoP %d out of range", m)
		}
		if m < s.memFloor(sj.run) {
			t.Errorf("DoP %d below memory floor %d", m, s.memFloor(sj.run))
		}
		// CPU utilization target: at the chosen DoP the predicted CPU
		// share is at least the target (or the floor forced it higher).
		spec := sj.run.spec
		util := spec.TcpuAt(m) / (spec.TcpuAt(m) + spec.NetSeconds)
		if m > s.memFloor(sj.run) && m < 32 && util < 0.55 {
			t.Errorf("%s: DoP %d gives CPU share %.2f, target 0.7", spec.ID, m, util)
		}
	}
}

func TestGCOverheadReportedUnderPressure(t *testing.T) {
	// Two jobs whose combined footprint sits in the GC zone.
	specs := workload.Small(2)
	for i := range specs {
		specs[i].Iterations = 6
		specs[i].Data.InputGB = 150
		specs[i].Data.ModelGB = 4
	}
	res := mustRun(t, Config{Machines: 16, Mode: ModeNaive, Seed: 1, NaiveGroupSize: 2}, Jobs(specs, nil))
	if len(res.Failed) == 0 && res.GCSeconds <= 0 {
		t.Error("high occupancy produced no GC time and no OOM")
	}
}
