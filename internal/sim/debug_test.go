package sim

import (
	"fmt"
	"os"
	"testing"

	"harmony/internal/simtime"
	"harmony/internal/workload"
)

// TestDebugTrace reproduces stalls with verbose state dumps; enabled via
// HARMONY_SIM_DEBUG=1.
func TestDebugTrace(t *testing.T) {
	if os.Getenv("HARMONY_SIM_DEBUG") == "" {
		t.Skip("set HARMONY_SIM_DEBUG=1 to run")
	}
	jobs := Jobs(workload.Base(), nil)
	cfg := Config{Machines: 100, Mode: ModeHarmony, Seed: 1, MaxVirtualTime: 2000 * simtime.Hour}
	s, err := New(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.run()
	fmt.Println("err:", err)
	if res != nil {
		fmt.Println("records:", len(res.Records), "failed:", res.Failed)
		return
	}
	for id, sj := range s.jobs {
		fmt.Printf("job %s state=%d iter=%d/%d group=%q target=%q pauseReq=%v profIters=%d\n",
			id, sj.state, sj.run.iter, sj.run.spec.Iterations, s.jobGroup[id],
			sj.targetGroup, sj.run.pauseRequested, sj.profIters)
	}
	fmt.Println("waiting:", s.waitingProfiled, "arrivalQueue:", s.arrivalQueue,
		"running:", s.runningCount, "groups:", len(s.groups))
	for sig, g := range s.groups {
		fmt.Printf("group %q machines=%d jobs=%d closed=%v cpuIdle=%v netIdle=%v\n",
			sig, g.machines, len(g.jobs), g.closed, g.cpu.idle(), g.net.idle())
	}
	fmt.Println("plan:", s.plan.String())
	fmt.Println("engine pending:", s.eng.Len(), "now:", s.eng.Now())
	for id, sj := range s.jobs {
		if sj.state != jobFinished && sj.state != jobFailed {
			fmt.Printf("unfinished %s: state=%d phase=%d iter=%d/%d alpha=%.2f reloadReady=%v target=%q group=%q\n",
				id, sj.state, sj.run.phase, sj.run.iter, sj.run.spec.Iterations,
				sj.run.alpha, sj.run.reloadReadyAt, sj.targetGroup, s.jobGroup[id])
		}
	}
}
