package sim

import (
	"fmt"
	"os"
	"testing"

	"harmony/internal/workload"
)

// TestCalibration runs the full 80-job / 100-machine experiment under all
// three modes and prints headline numbers for manual calibration checks.
// Gated behind HARMONY_SIM_CALIB=1 because it is an inspection aid, not
// an assertion.
func TestCalibration(t *testing.T) {
	if os.Getenv("HARMONY_SIM_CALIB") == "" {
		t.Skip("set HARMONY_SIM_CALIB=1 to run")
	}
	jobs := Jobs(workload.Base(), nil)
	for _, mode := range []Mode{ModeIsolated, ModeNaive, ModeHarmony} {
		res, err := Run(Config{Machines: 100, Mode: mode, Seed: 1}, jobs)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		fmt.Printf("%-9s meanJCT=%8.1fmin makespan=%8.1fmin cpu=%.3f net=%.3f finished=%d failed=%d concJobs=%.1f groups=%.1f gc=%.0fs paused=%.0fs poolWait=%.0fs\n",
			mode, res.Summary.MeanJCT.Minutes(), res.Summary.Makespan.Minutes(),
			res.Summary.CPUUtil, res.Summary.NetUtil, len(res.Records), len(res.Failed),
			res.MeanConcurrentJobs, res.MeanGroups, res.GCSeconds, res.PausedSeconds, res.PoolWaitSeconds)
	}
}
