package sim

// initAlpha sets a job's initial disk-block ratio when it joins a group.
// The paper determines the initial value "by estimating the memory use
// for accommodating input data and model data" (§IV-C); we solve for the
// α that brings the group to the middle of the memory target band.
func (s *Simulator) initAlpha(j *jobRun, g *groupRun) {
	j.alphaDir = 0
	j.alphaProbePeriods = j.alphaProbePeriods[:0]
	j.alphaPrevPeriod = 0
	if !s.reloadEnabled() {
		j.alpha = 0
		return
	}
	if s.cfg.FixedAlpha != AdaptiveAlpha {
		j.alpha = clampAlpha(s.cfg.FixedAlpha)
		return
	}
	capGB := s.cfg.Spec.MemoryGB
	var others float64
	for _, jj := range g.jobs {
		if jj != j {
			others += jj.memoryGB(g.machines)
		}
	}
	j.alpha = 0
	full := others + j.memoryGB(g.machines)
	target := (DefaultMemoryTargetLow + DefaultMemoryTargetHigh) / 2 * capGB
	if full <= DefaultMemoryTargetHigh*capGB {
		return
	}
	// Resident input shrinks by JVMHeapFactor * α * input/m; solve for
	// the α that lands on the target.
	perAlpha := 2.2 * j.spec.Data.InputGB / float64(g.machines)
	if perAlpha <= 0 {
		return
	}
	j.alpha = clampAlpha((full - target) / perAlpha)
}

// alphaProbeLen is how many iteration periods are averaged per
// hill-climbing probe; short enough to adapt, long enough to smooth
// per-iteration jitter.
const alphaProbeLen = 3

// adjustAlpha is the hill-climbing controller of §IV-C: each job probes
// its iteration period for a few iterations, then steps α in the
// direction that made iterations faster — balancing GC pressure (low α)
// against reload and deserialization cost (high α) with no explicit
// model of either. A memory guard overrides the probe when the group
// approaches the occupancy ceiling.
func (s *Simulator) adjustAlpha(g *groupRun, j *jobRun, periodSeconds float64) {
	occ := g.occupancy()
	if occ > DefaultMemoryTargetHigh {
		// Safety: spill more of the largest resident input before GC
		// overheads spike; probing resumes afterwards.
		var pick *jobRun
		var most float64
		for _, jj := range g.jobs {
			resident := (1 - jj.alpha) * jj.spec.Data.InputGB / float64(g.machines)
			if jj.alpha < 1 && resident > most {
				most = resident
				pick = jj
			}
		}
		if pick != nil {
			pick.alpha = clampAlpha(pick.alpha + DefaultAlphaStep)
			pick.alphaProbePeriods = pick.alphaProbePeriods[:0]
			pick.alphaPrevPeriod = 0
		} else {
			// Inputs fully spilled: fall back to model spill.
			g.resolveMemory()
		}
		return
	}
	if j.spec.Data.InputGB <= 0 || periodSeconds <= 0 {
		return
	}

	j.alphaProbePeriods = append(j.alphaProbePeriods, periodSeconds)
	if len(j.alphaProbePeriods) < alphaProbeLen {
		return
	}
	var mean float64
	for _, p := range j.alphaProbePeriods {
		mean += p
	}
	mean /= float64(len(j.alphaProbePeriods))
	j.alphaProbePeriods = j.alphaProbePeriods[:0]

	if j.alphaPrevPeriod == 0 {
		// First probe: start exploring downward — α should be "as low as
		// possible" when memory allows (§IV-C), since reloading costs
		// deserialization work.
		j.alphaPrevPeriod = mean
		j.alphaDir = -DefaultAlphaStep
		j.alpha = clampAlpha(j.alpha + j.alphaDir)
		return
	}
	if mean > j.alphaPrevPeriod*1.01 {
		// The last step hurt: reverse direction.
		j.alphaDir = -j.alphaDir
	}
	j.alphaPrevPeriod = mean
	next := clampAlpha(j.alpha + j.alphaDir)
	// Never step into memory territory the guard would immediately undo.
	delta := 2.2 * (j.alpha - next) * j.spec.Data.InputGB / float64(g.machines)
	capGB := s.cfg.Spec.MemoryGB
	if occ+delta/capGB <= DefaultMemoryTargetHigh {
		j.alpha = next
	}
}

func clampAlpha(a float64) float64 {
	if a < 0 {
		return 0
	}
	if a > 1 {
		return 1
	}
	return a
}
