package sim

import (
	"fmt"
	"os"
)

// traceEnabled turns on verbose scheduling traces via HARMONY_SIM_DEBUG.
var traceEnabled = os.Getenv("HARMONY_SIM_DEBUG") != ""

func (s *Simulator) tracef(format string, args ...any) {
	if !traceEnabled {
		return
	}
	fmt.Printf("[%s] %s\n", s.eng.Now(), fmt.Sprintf(format, args...))
}
