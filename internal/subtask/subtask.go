// Package subtask implements the fine-grained execution model of §IV-A
// for the live runtime: each worker decomposes its jobs' iterations into
// COMP and COMM subtasks and runs them through per-resource runner
// queues — one COMP subtask at a time (it saturates the cores), and up to
// two concurrent COMM subtasks (a secondary fills the primary's idle
// gaps while yielding on contention).
package subtask

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"harmony/internal/obs"
)

// Kind classifies a subtask by its dominant resource.
type Kind int

// Subtask kinds of §IV-A. PULL and PUSH are both network-dominant COMM
// subtasks.
const (
	Comp Kind = iota + 1
	Pull
	Push
)

// String names the kind as the paper does.
func (k Kind) String() string {
	switch k {
	case Comp:
		return "COMP"
	case Pull:
		return "PULL"
	case Push:
		return "PUSH"
	default:
		return "Subtask(?)"
	}
}

// IsComm reports whether the subtask uses the network.
func (k Kind) IsComm() bool { return k == Pull || k == Push }

// phase maps the kind to its telemetry phase.
func (k Kind) phase() obs.Phase {
	switch k {
	case Comp:
		return obs.PhaseComp
	case Pull:
		return obs.PhasePull
	default:
		return obs.PhasePush
	}
}

// ErrClosed is returned when submitting to a closed executor.
var ErrClosed = errors.New("subtask: executor closed")

// CompConcurrency and CommConcurrency encode §IV-A's executor rules.
const (
	CompConcurrency = 1
	CommConcurrency = 2
)

// Stats summarizes executed subtasks per kind.
type Stats struct {
	Executed map[Kind]int
	// Busy accumulates per-resource busy wall time.
	CPUBusy time.Duration
	NetBusy time.Duration
}

// Executor is one worker's pair of runner queues. Submitted subtasks run
// asynchronously in FIFO order per resource; the done callback fires from
// the executor goroutine when the subtask's work function returns.
type Executor struct {
	mu      sync.Mutex
	cond    *sync.Cond
	cpuQ    []*item
	netQ    []*item
	cpuRun  int
	netRun  int
	closed  bool
	wg      sync.WaitGroup
	stats   Stats
	started time.Time

	// rec, when set, receives an execution span per subtask plus a
	// slot-wait span for the time it sat queued behind other jobs'
	// subtasks. Nil (the default) disables tracing with zero overhead
	// beyond the atomic load.
	rec atomic.Pointer[obs.Recorder]
}

type item struct {
	kind Kind
	job  string
	iter int
	// enq stamps submission time for the slot-wait span; zero when
	// tracing is off.
	enq  time.Time
	work func()
	done func()
}

// NewExecutor starts the runner goroutines (one CPU lane, two network
// lanes, per §IV-A).
func NewExecutor() *Executor {
	e := &Executor{stats: Stats{Executed: make(map[Kind]int)}, started: time.Now()}
	e.cond = sync.NewCond(&e.mu)
	for i := 0; i < CompConcurrency; i++ {
		e.wg.Add(1)
		go e.runner(true)
	}
	for i := 0; i < CommConcurrency; i++ {
		e.wg.Add(1)
		go e.runner(false)
	}
	return e
}

// SetRecorder attaches a span recorder; every subsequent subtask emits
// an execution span and a slot-wait span tagged with its job and
// iteration. Pass nil to disable.
func (e *Executor) SetRecorder(r *obs.Recorder) { e.rec.Store(r) }

// Submit enqueues a subtask for the given job. work runs on the resource
// lane; done (optional) runs right after on the same goroutine.
func (e *Executor) Submit(kind Kind, job string, work func(), done func()) error {
	return e.SubmitAt(kind, job, 0, work, done)
}

// SubmitAt is Submit carrying the job iteration the subtask belongs to,
// so recorded spans line up with barrier rounds in the trace.
func (e *Executor) SubmitAt(kind Kind, job string, iter int, work func(), done func()) error {
	it := &item{kind: kind, job: job, iter: iter, work: work, done: done}
	if e.rec.Load() != nil {
		it.enq = time.Now()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if kind == Comp {
		e.cpuQ = append(e.cpuQ, it)
	} else {
		e.netQ = append(e.netQ, it)
	}
	e.cond.Broadcast()
	return nil
}

func (e *Executor) runner(cpu bool) {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for !e.closed {
			if cpu && len(e.cpuQ) > 0 {
				break
			}
			if !cpu && len(e.netQ) > 0 {
				break
			}
			e.cond.Wait()
		}
		if e.closed {
			e.mu.Unlock()
			return
		}
		var it *item
		if cpu {
			it = e.cpuQ[0]
			e.cpuQ = e.cpuQ[1:]
			e.cpuRun++
		} else {
			it = e.netQ[0]
			e.netQ = e.netQ[1:]
			e.netRun++
		}
		e.mu.Unlock()

		start := time.Now()
		it.work()
		end := time.Now()
		elapsed := end.Sub(start)
		if rec := e.rec.Load(); rec != nil {
			if !it.enq.IsZero() {
				wait := obs.PhaseWaitNet
				if cpu {
					wait = obs.PhaseWaitCPU
				}
				rec.Record(wait, it.job, it.iter, it.enq, start)
			}
			rec.Record(it.kind.phase(), it.job, it.iter, start, end)
		}

		e.mu.Lock()
		e.stats.Executed[it.kind]++
		if cpu {
			e.stats.CPUBusy += elapsed
			e.cpuRun--
		} else {
			e.stats.NetBusy += elapsed
			e.netRun--
		}
		e.mu.Unlock()

		if it.done != nil {
			it.done()
		}
	}
}

// QueueDepths reports pending subtasks per resource (diagnostics).
func (e *Executor) QueueDepths() (cpu, net int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cpuQ), len(e.netQ)
}

// Stats returns a snapshot of execution counters.
func (e *Executor) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := Stats{
		Executed: make(map[Kind]int, len(e.stats.Executed)),
		CPUBusy:  e.stats.CPUBusy,
		NetBusy:  e.stats.NetBusy,
	}
	for k, v := range e.stats.Executed {
		out.Executed[k] = v
	}
	return out
}

// Utilization reports the CPU and network busy fractions since the
// executor started — the live analogue of the simulator's recorder.
func (e *Executor) Utilization() (cpu, net float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	wall := time.Since(e.started).Seconds()
	if wall <= 0 {
		return 0, 0
	}
	return e.stats.CPUBusy.Seconds() / wall,
		e.stats.NetBusy.Seconds() / (wall * CommConcurrency)
}

// Close drains nothing: queued subtasks are discarded, running ones
// finish, and the runner goroutines exit.
func (e *Executor) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.cpuQ, e.netQ = nil, nil
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}
