package subtask

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harmony/internal/obs"
)

func TestKindString(t *testing.T) {
	if Comp.String() != "COMP" || Pull.String() != "PULL" || Push.String() != "PUSH" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "Subtask(?)" {
		t.Error("unknown kind name wrong")
	}
	if Comp.IsComm() || !Pull.IsComm() || !Push.IsComm() {
		t.Error("IsComm wrong")
	}
}

func TestCompSubtasksSerialize(t *testing.T) {
	e := NewExecutor()
	defer e.Close()
	var concurrent, maxConcurrent int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		err := e.Submit(Comp, "j", func() {
			c := atomic.AddInt32(&concurrent, 1)
			for {
				m := atomic.LoadInt32(&maxConcurrent)
				if c <= m || atomic.CompareAndSwapInt32(&maxConcurrent, m, c) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			atomic.AddInt32(&concurrent, -1)
		}, wg.Done)
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := atomic.LoadInt32(&maxConcurrent); got != 1 {
		t.Errorf("max concurrent COMP subtasks = %d, want exactly 1 (§IV-A)", got)
	}
}

func TestCommSubtasksRunTwoWide(t *testing.T) {
	e := NewExecutor()
	defer e.Close()
	var concurrent, maxConcurrent int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		kind := Pull
		if i%2 == 1 {
			kind = Push
		}
		wg.Add(1)
		err := e.Submit(kind, "j", func() {
			c := atomic.AddInt32(&concurrent, 1)
			for {
				m := atomic.LoadInt32(&maxConcurrent)
				if c <= m || atomic.CompareAndSwapInt32(&maxConcurrent, m, c) {
					break
				}
			}
			time.Sleep(10 * time.Millisecond)
			atomic.AddInt32(&concurrent, -1)
		}, wg.Done)
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := atomic.LoadInt32(&maxConcurrent); got > 2 {
		t.Errorf("max concurrent COMM subtasks = %d, want <= 2 (primary+secondary)", got)
	}
	if got := atomic.LoadInt32(&maxConcurrent); got < 2 {
		t.Errorf("max concurrent COMM subtasks = %d, want the secondary lane used", got)
	}
}

func TestCompAndCommOverlap(t *testing.T) {
	e := NewExecutor()
	defer e.Close()
	var inComp, overlapped int32
	var wg sync.WaitGroup
	wg.Add(2)
	if err := e.Submit(Comp, "a", func() {
		atomic.StoreInt32(&inComp, 1)
		time.Sleep(30 * time.Millisecond)
		atomic.StoreInt32(&inComp, 0)
	}, wg.Done); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(Pull, "b", func() {
		time.Sleep(5 * time.Millisecond)
		if atomic.LoadInt32(&inComp) == 1 {
			atomic.StoreInt32(&overlapped, 1)
		}
	}, wg.Done); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if atomic.LoadInt32(&overlapped) != 1 {
		t.Error("COMM subtask did not overlap the COMP subtask")
	}
}

func TestFIFOWithinResource(t *testing.T) {
	e := NewExecutor()
	defer e.Close()
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		i := i
		wg.Add(1)
		if err := e.Submit(Comp, "j", func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}, wg.Done); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	for i := range order {
		if order[i] != i {
			t.Fatalf("COMP order %v, want FIFO", order)
		}
	}
}

func TestStatsAndUtilization(t *testing.T) {
	e := NewExecutor()
	defer e.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	if err := e.Submit(Comp, "j", func() { time.Sleep(10 * time.Millisecond) }, wg.Done); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(Push, "j", func() { time.Sleep(10 * time.Millisecond) }, wg.Done); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	st := e.Stats()
	if st.Executed[Comp] != 1 || st.Executed[Push] != 1 {
		t.Errorf("executed = %v", st.Executed)
	}
	if st.CPUBusy <= 0 || st.NetBusy <= 0 {
		t.Error("busy accounting missing")
	}
	cpu, net := e.Utilization()
	if cpu <= 0 || cpu > 1 || net <= 0 || net > 1 {
		t.Errorf("utilization out of range: %v, %v", cpu, net)
	}
}

func TestQueueDepths(t *testing.T) {
	e := NewExecutor()
	defer e.Close()
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	if err := e.Submit(Comp, "j", func() { <-block }, wg.Done); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.Submit(Comp, "j", func() {}, nil); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(time.Second)
	for {
		cpu, _ := e.QueueDepths()
		if cpu == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached 3")
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()
}

func TestSubmitAfterClose(t *testing.T) {
	e := NewExecutor()
	e.Close()
	if err := e.Submit(Comp, "j", func() {}, nil); err != ErrClosed {
		t.Errorf("Submit after close = %v, want ErrClosed", err)
	}
	e.Close() // double close is a no-op
}

// TestExecutorRecordsSpans pins the tracing hook: with a recorder
// attached, each subtask emits an execution span carrying its job and
// iteration plus a slot-wait span for its time in the queue.
func TestExecutorRecordsSpans(t *testing.T) {
	e := NewExecutor()
	defer e.Close()
	r := obs.NewRecorder(64)
	e.SetRecorder(r)
	var wg sync.WaitGroup
	wg.Add(2)
	if err := e.SubmitAt(Comp, "a", 7, func() { time.Sleep(2 * time.Millisecond) }, wg.Done); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitAt(Pull, "b", 3, func() {}, wg.Done); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	spans := r.SpansAfter(0, nil)
	byPhase := map[obs.Phase][]obs.Span{}
	for _, s := range spans {
		byPhase[s.Phase] = append(byPhase[s.Phase], s)
	}
	comp := byPhase[obs.PhaseComp]
	if len(comp) != 1 || comp[0].Job != "a" || comp[0].Iter != 7 {
		t.Errorf("comp spans = %+v", comp)
	}
	if comp[0].End <= comp[0].Start {
		t.Errorf("comp span not positive: %+v", comp[0])
	}
	pull := byPhase[obs.PhasePull]
	if len(pull) != 1 || pull[0].Job != "b" || pull[0].Iter != 3 {
		t.Errorf("pull spans = %+v", pull)
	}
	if len(byPhase[obs.PhaseWaitCPU]) != 1 || len(byPhase[obs.PhaseWaitNet]) != 1 {
		t.Errorf("missing slot-wait spans: %+v", byPhase)
	}
}
