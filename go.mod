module harmony

go 1.23
