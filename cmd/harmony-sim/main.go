// harmony-sim runs one simulated execution of an ML training workload on
// a modelled cluster under a chosen scheduler.
//
//	harmony-sim -machines 100 -scheduler harmony -jobs 80
//	harmony-sim -machines 50 -scheduler isolated -jobs 20 -arrival 4m
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"harmony"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "harmony-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("harmony-sim", flag.ContinueOnError)
	machines := fs.Int("machines", 100, "cluster size")
	schedName := fs.String("scheduler", "harmony", "harmony | isolated | naive")
	nJobs := fs.Int("jobs", 80, "number of jobs from the paper workload (max 80)")
	arrival := fs.Duration("arrival", 0, "mean inter-arrival time (0 = batch submission)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scheduler harmony.Scheduler
	switch *schedName {
	case "harmony":
		scheduler = harmony.HarmonyScheduler
	case "isolated":
		scheduler = harmony.IsolatedScheduler
	case "naive":
		scheduler = harmony.NaiveScheduler
	default:
		return fmt.Errorf("unknown scheduler %q", *schedName)
	}

	jobs := harmony.PaperWorkload()
	if *nJobs < len(jobs) {
		jobs = harmony.SmallWorkload(*nJobs)
	}
	if *arrival > 0 {
		for i := range jobs {
			jobs[i].Arrival = time.Duration(i) * *arrival
		}
	}

	start := time.Now()
	rep, err := harmony.Simulate(harmony.SimConfig{
		Machines:  *machines,
		Scheduler: scheduler,
		Seed:      *seed,
	}, jobs)
	if err != nil {
		return err
	}
	fmt.Printf("scheduler=%s machines=%d jobs=%d (simulated in %s)\n",
		*schedName, *machines, len(jobs), time.Since(start).Round(time.Millisecond))
	fmt.Printf("  mean JCT:          %s\n", rep.MeanJCT.Round(time.Second))
	fmt.Printf("  makespan:          %s\n", rep.Makespan.Round(time.Second))
	fmt.Printf("  CPU utilization:   %.1f%%\n", rep.CPUUtil*100)
	fmt.Printf("  net utilization:   %.1f%%\n", rep.NetUtil*100)
	fmt.Printf("  finished/failed:   %d/%d\n", rep.Finished, rep.Failed)
	fmt.Printf("  avg running jobs:  %.1f in %.1f groups\n", rep.MeanConcurrentJobs, rep.MeanGroups)
	return nil
}
