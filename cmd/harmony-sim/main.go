// harmony-sim runs one simulated execution of an ML training workload on
// a modelled cluster under a chosen scheduler, or deterministically
// replays a live cluster snapshot (`harmonyctl snapshot`) and reports
// model drift.
//
//	harmony-sim -machines 100 -scheduler harmony -jobs 80
//	harmony-sim -machines 50 -scheduler isolated -jobs 20 -arrival 4m
//	harmony-sim -replay snap.json
//	harmony-sim -replay snap.json -machines 8 -queues 'prod:quota=0.75;dev' -scenario-out scenario.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"harmony"
	"harmony/internal/replay"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "harmony-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("harmony-sim", flag.ContinueOnError)
	machines := fs.Int("machines", 100, "cluster size")
	schedName := fs.String("scheduler", "harmony", "harmony | isolated | naive")
	nJobs := fs.Int("jobs", 80, "number of jobs from the paper workload (max 80)")
	arrival := fs.Duration("arrival", 0, "mean inter-arrival time (0 = batch submission)")
	seed := fs.Int64("seed", 1, "random seed")
	replayFile := fs.String("replay", "", "replay a harmonyctl snapshot instead of simulating")
	queues := fs.String("queues", "", "replay what-if: queue policy (e.g. 'prod:quota=0.7;dev:weight=1')")
	netModel := fs.String("net-model", "", "replay what-if: on or off (empty = as captured)")
	scenarioOut := fs.String("scenario-out", "", "replay: also write the snapshot as a simulator scenario JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *replayFile != "" {
		// -machines keeps its simulate-mode default; only an explicit
		// value becomes a what-if override.
		explicitMachines := 0
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "machines" {
				explicitMachines = *machines
			}
		})
		return runReplay(*replayFile, explicitMachines, *queues, *netModel, *scenarioOut)
	}

	var scheduler harmony.Scheduler
	switch *schedName {
	case "harmony":
		scheduler = harmony.HarmonyScheduler
	case "isolated":
		scheduler = harmony.IsolatedScheduler
	case "naive":
		scheduler = harmony.NaiveScheduler
	default:
		return fmt.Errorf("unknown scheduler %q", *schedName)
	}

	jobs := harmony.PaperWorkload()
	if *nJobs < len(jobs) {
		jobs = harmony.SmallWorkload(*nJobs)
	}
	if *arrival > 0 {
		for i := range jobs {
			jobs[i].Arrival = time.Duration(i) * *arrival
		}
	}

	start := time.Now()
	rep, err := harmony.Simulate(harmony.SimConfig{
		Machines:  *machines,
		Scheduler: scheduler,
		Seed:      *seed,
	}, jobs)
	if err != nil {
		return err
	}
	fmt.Printf("scheduler=%s machines=%d jobs=%d (simulated in %s)\n",
		*schedName, *machines, len(jobs), time.Since(start).Round(time.Millisecond))
	fmt.Printf("  mean JCT:          %s\n", rep.MeanJCT.Round(time.Second))
	fmt.Printf("  makespan:          %s\n", rep.Makespan.Round(time.Second))
	fmt.Printf("  CPU utilization:   %.1f%%\n", rep.CPUUtil*100)
	fmt.Printf("  net utilization:   %.1f%%\n", rep.NetUtil*100)
	fmt.Printf("  finished/failed:   %d/%d\n", rep.Finished, rep.Failed)
	fmt.Printf("  avg running jobs:  %.1f in %.1f groups\n", rep.MeanConcurrentJobs, rep.MeanGroups)
	return nil
}

// runReplay loads a snapshot, re-executes its decision journal through
// internal/replay, and prints the calibration report. The replay is
// deterministic: the same snapshot bytes and overrides always produce
// byte-identical output.
func runReplay(file string, machines int, queues, netModel, scenarioOut string) error {
	data, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	snap, err := replay.Load(data)
	if err != nil {
		return err
	}
	ov := replay.Overrides{Machines: machines, Queues: queues}
	switch netModel {
	case "":
	case "on", "off":
		v := netModel == "on"
		ov.NetModel = &v
	default:
		return fmt.Errorf("-net-model must be on or off")
	}
	rep, err := replay.Run(snap, ov)
	if err != nil {
		return err
	}
	b, err := rep.Encode()
	if err != nil {
		return err
	}
	if _, err := os.Stdout.Write(b); err != nil {
		return err
	}
	if scenarioOut != "" {
		sc, err := replay.ToScenario(snap, ov)
		if err != nil {
			return err
		}
		sb, err := json.MarshalIndent(sc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(scenarioOut, append(sb, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote scenario (%d jobs, %d machines) to %s\n",
			len(sc.Jobs), sc.Config.Machines, scenarioOut)
	}
	return nil
}
