// harmony-trace-demo boots a traced in-process cluster — one master and
// two workers with span recording on — runs two co-located training
// jobs, and writes the cluster's Chrome trace-event JSON to a file.
// Load the output at https://ui.perfetto.dev: each machine is a
// process, with one track per resource (cpu, net, wait queues,
// barrier), and the two jobs' COMP and COMM spans overlap on the shared
// machines exactly as §IV-A's pipelining predicts.
//
//	harmony-trace-demo -o trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"harmony"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "harmony-trace-demo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("harmony-trace-demo", flag.ContinueOnError)
	out := fs.String("o", "trace.json", "output file for the Chrome trace-event JSON")
	iterations := fs.Int("iterations", 30, "iterations per demo job")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := harmony.StartMaster("127.0.0.1:0", harmony.ScheduleOptions{})
	if err != nil {
		return err
	}
	defer m.Close()
	m.EnableTracing()

	var workers []*harmony.Worker
	for _, name := range []string{"w0", "w1"} {
		dir, err := os.MkdirTemp("", "harmony-trace-demo-"+name)
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		w, err := harmony.StartWorker(name, "127.0.0.1:0", m.Addr(), dir)
		if err != nil {
			return err
		}
		defer w.Close()
		w.EnableTracing()
		workers = append(workers, w)
	}
	if err := m.WaitForWorkers(len(workers), time.Minute); err != nil {
		return err
	}
	cp, err := m.ServeAPI("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer cp.Close()
	fmt.Printf("traced cluster up: master %s, control plane http://%s\n", m.Addr(), cp.Addr())

	// Two jobs sharing the full worker group: their COMP and COMM
	// subtasks interleave on both machines, which is the overlap the
	// trace is meant to show.
	jobs := []harmony.Training{
		{
			Name:       "mlr",
			Config:     harmony.TrainingConfig{Algorithm: "mlr", Features: 32, Classes: 4, Rows: 512},
			Iterations: *iterations,
			Seed:       1,
		},
		{
			Name:       "lasso",
			Config:     harmony.TrainingConfig{Algorithm: "lasso", Features: 32, Rows: 384, Lambda: 0.02},
			Iterations: *iterations,
			Seed:       2,
		},
	}
	for _, j := range jobs {
		if err := m.Submit(j); err != nil {
			return err
		}
		fmt.Printf("submitted %s (%d iterations)\n", j.Name, j.Iterations)
	}
	for _, j := range jobs {
		if err := m.Wait(j.Name, 5*time.Minute); err != nil {
			return err
		}
	}

	// Pull the trace through the same HTTP endpoint harmonyctl uses,
	// while the workers are still alive to answer the span collection.
	body, err := get(fmt.Sprintf("http://%s/v1/trace", cp.Addr()))
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, body, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d bytes to %s (load in https://ui.perfetto.dev)\n", len(body), *out)

	events, err := get(fmt.Sprintf("http://%s/v1/events", cp.Addr()))
	if err == nil {
		fmt.Printf("decision journal: %d bytes at /v1/events (harmonyctl -addr http://%s events)\n",
			len(events), cp.Addr())
	}
	return nil
}

func get(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}
