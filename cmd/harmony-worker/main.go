// harmony-worker runs one live Harmony worker: it serves a co-located
// parameter server, registers with the master, and executes assigned jobs
// through the subtask runner queues until interrupted.
//
//	harmony-worker -name w0 -master 127.0.0.1:7070
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"harmony"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "harmony-worker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("harmony-worker", flag.ContinueOnError)
	name := fs.String("name", "", "unique worker name (required)")
	listen := fs.String("listen", "127.0.0.1:0", "address to serve the parameter server on")
	master := fs.String("master", "127.0.0.1:7070", "master address")
	spill := fs.String("spill", "", "directory for spilled input blocks (default: temp dir)")
	compParallel := fs.Int("comp-parallel", 0,
		"core pool for the fused COMP kernel (0 = GOMAXPROCS; results are bit-identical at any setting)")
	traceOn := fs.Bool("trace", false, "record subtask/barrier spans for the master's /v1/trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("-name is required")
	}
	dir := *spill
	if dir == "" {
		tmp, err := os.MkdirTemp("", "harmony-worker-"+*name)
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	w, err := harmony.StartWorker(*name, *listen, *master, dir)
	if err != nil {
		return err
	}
	defer w.Close()
	w.SetCompParallelism(*compParallel)
	if *traceOn {
		w.EnableTracing()
	}
	fmt.Printf("worker %s registered with master %s (spill dir %s)\n", *name, *master, dir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return nil
}
