package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"harmony/internal/core"
	"harmony/internal/sim"
	"harmony/internal/workload"
)

// Network-aware placement benchmark (-bench-place): the contention A/B
// of DESIGN.md §14 at the paper's 100-machine scale. Both arms run the
// non-work-conserving shared-link physics (sim.Config.LinkContention):
// comm bursts from different jobs that drive the link concurrently burn
// CollisionLoss of aggregate goodput and stay phase-locked. The OFF arm
// schedules with the paper's aggregate-bandwidth model, so co-located
// comm-heavy jobs collide every iteration; the ON arm adds
// core.Options.NetModel — compatibility-aware grouping plus the
// CASSINI-style phase offsets the simulator enforces by staggering
// cycle starts. Headline metric: aggregate iteration throughput ON/OFF.
const (
	placeSeeds    = 5
	placeMachines = 100
	placeJobs     = 24
	placeIters    = 30
	// placeCollisionLoss models heavy incast-style congestion on the
	// oversubscribed shared link: colliding bursts lose nearly half the
	// aggregate goodput to retransmits and head-of-line blocking.
	placeCollisionLoss = 0.45
)

// placeArmResult aggregates one scheduler arm over the seeds.
type placeArmResult struct {
	Mode string `json:"mode"`
	// MeanThroughput is iterations completed per 1000 simulated seconds,
	// averaged over seeds.
	MeanThroughput float64 `json:"mean_iters_per_1000s"`
	// MeanIterSeconds is the mean per-job iteration time (run time over
	// iterations), averaged over jobs then seeds.
	MeanIterSeconds float64 `json:"mean_iter_seconds"`
	MeanMakespan    float64 `json:"mean_makespan_seconds"`
	MeanJCT         float64 `json:"mean_jct_seconds"`
	// MeanCollisionSeconds is link-time per run during which comm bursts
	// from different jobs collided (Result.LinkCollisionSeconds).
	MeanCollisionSeconds float64 `json:"mean_collision_seconds"`
	Completed            int     `json:"completed"`
	Failed               int     `json:"failed"`
}

// placeReport is the machine-readable record written to
// BENCH_placement.json; future PRs diff against it.
type placeReport struct {
	GoMaxProcs int            `json:"gomaxprocs"`
	GoVersion  string         `json:"go_version"`
	Timestamp  string         `json:"timestamp"`
	Machines   int            `json:"machines"`
	Jobs       int            `json:"jobs"`
	Seeds      int            `json:"seeds"`
	Baseline   placeArmResult `json:"baseline"`
	NetAware   placeArmResult `json:"net_aware"`
	// ThroughputSpeedup is NetAware throughput over Baseline (higher is
	// better); IterTimeRatio is NetAware mean T_itr over Baseline (lower
	// is better).
	ThroughputSpeedup float64 `json:"throughput_net_aware_vs_baseline"`
	IterTimeRatio     float64 `json:"iter_time_net_aware_vs_baseline"`
}

// placeScenario builds the comm-heavy contention workload: 24 jobs whose
// computation-to-communication ratio balances at DoP ~8, so Algorithm 1
// packs them two per group across the 100 machines. PULL/PUSH splits are
// deliberately heterogeneous — long asymmetric comm windows are what
// collide when cycles dispatch in phase and what the interleaving
// solver's offsets separate.
func placeScenario() []sim.Job {
	pullFracs := []float64{0.8, 0.35, 0.65, 0.5}
	specs := make([]workload.Spec, placeJobs)
	for i := range specs {
		mul := 0.9 + 0.02*float64(i%11)
		specs[i] = workload.Spec{
			ID:                 fmt.Sprintf("place-%02d", i),
			App:                workload.Lasso,
			Data:               workload.Dataset{Name: "PlaceSynth", InputGB: 8, ModelGB: 2},
			Hyper:              fmt.Sprintf("mul=%.2f", mul),
			CompMachineSeconds: 1600 * mul,
			NetSeconds:         200 * mul,
			PullFrac:           pullFracs[i%len(pullFracs)],
			Iterations:         placeIters,
			WorkGB:             0.5,
		}
	}
	return sim.Jobs(specs, nil)
}

func runBenchPlace(path string) error {
	report := placeReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Machines:   placeMachines,
		Jobs:       placeJobs,
		Seeds:      placeSeeds,
	}
	fmt.Printf("benchmarking net-aware placement: %d machines, %d comm-heavy jobs, link contention on, %d seeds per arm...\n",
		placeMachines, placeJobs, placeSeeds)

	measure := func(netAware bool) (placeArmResult, error) {
		out := placeArmResult{Mode: "baseline"}
		if netAware {
			out.Mode = "net_aware"
		}
		for seed := 0; seed < placeSeeds; seed++ {
			cfg := sim.Config{
				Machines:       placeMachines,
				Mode:           sim.ModeHarmony,
				Seed:           int64(seed + 1),
				LinkContention: true,
				CollisionLoss:  placeCollisionLoss,
				SchedOpts:      core.Options{NetModel: netAware, MaxJobsPerGroup: 2},
			}
			res, err := sim.Run(cfg, placeScenario())
			if err != nil {
				return out, fmt.Errorf("%s seed %d: %w", out.Mode, seed, err)
			}
			out.Failed += len(res.Failed)
			out.Completed += len(res.Records)
			makespan := res.Summary.Makespan.Seconds()
			if makespan > 0 {
				iters := float64(len(res.Records) * placeIters)
				out.MeanThroughput += iters / makespan * 1000
			}
			var iterSum float64
			for _, r := range res.Records {
				iterSum += r.Finish.Sub(r.Start).Seconds() / placeIters
			}
			if len(res.Records) > 0 {
				out.MeanIterSeconds += iterSum / float64(len(res.Records))
			}
			out.MeanMakespan += makespan
			out.MeanJCT += res.Summary.MeanJCT.Seconds()
			out.MeanCollisionSeconds += res.LinkCollisionSeconds
		}
		out.MeanThroughput /= placeSeeds
		out.MeanIterSeconds /= placeSeeds
		out.MeanMakespan /= placeSeeds
		out.MeanJCT /= placeSeeds
		out.MeanCollisionSeconds /= placeSeeds
		return out, nil
	}

	var err error
	if report.Baseline, err = measure(false); err != nil {
		return err
	}
	if report.NetAware, err = measure(true); err != nil {
		return err
	}
	if report.Baseline.MeanThroughput > 0 {
		report.ThroughputSpeedup = report.NetAware.MeanThroughput / report.Baseline.MeanThroughput
	}
	if report.Baseline.MeanIterSeconds > 0 {
		report.IterTimeRatio = report.NetAware.MeanIterSeconds / report.Baseline.MeanIterSeconds
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\n  %-9s %16s %12s %12s %10s %12s %9s\n",
		"MODE", "ITERS/1000s", "T_ITR(s)", "MAKESPAN(s)", "JCT(s)", "COLLIDED(s)", "DONE")
	for _, r := range []placeArmResult{report.Baseline, report.NetAware} {
		fmt.Printf("  %-9s %16.1f %12.1f %12.0f %10.0f %12.0f %6d/%d\n",
			r.Mode, r.MeanThroughput, r.MeanIterSeconds, r.MeanMakespan, r.MeanJCT,
			r.MeanCollisionSeconds, r.Completed, placeSeeds*placeJobs)
	}
	fmt.Printf("\n  aggregate throughput net-aware/baseline: %.2fx (mean T_itr ratio %.2fx)\n",
		report.ThroughputSpeedup, report.IterTimeRatio)
	fmt.Printf("  wrote %s\n", path)
	return nil
}
