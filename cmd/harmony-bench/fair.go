package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"harmony/internal/fair"
)

// Fair-scheduler benchmark (-bench-fair): the two-tenant contention
// A/B of DESIGN.md §13. tenantB floods the cluster with long
// single-worker jobs at tick 0; tenantA's gang jobs arrive one tick
// later under a 70/30 quota split. The FIFO baseline makes tenantA
// wait for the flood to drain; the fair policy preempts tenantB back
// toward its quota, so the headline metric is ticks until tenantA
// reaches its fair share, alongside preemption-to-resume latency.
const fairSeeds = 5

// fairModeResult aggregates one policy over the seeds.
type fairModeResult struct {
	Mode string `json:"mode"`
	// MeanTimeToShareA / B average ticks-to-quota over seeds where the
	// queue attained its share; Attained counts those seeds.
	MeanTimeToShareA float64 `json:"mean_time_to_share_tenant_a"`
	AttainedA        int     `json:"attained_tenant_a"`
	MeanTimeToShareB float64 `json:"mean_time_to_share_tenant_b"`
	AttainedB        int     `json:"attained_tenant_b"`
	Preemptions      int     `json:"preemptions"`
	MeanResumeTicks  float64 `json:"mean_resume_ticks"`
	MeanMakespan     float64 `json:"mean_makespan"`
	Completed        int     `json:"completed"`
}

// fairReport is the machine-readable record written to BENCH_fair.json;
// future PRs diff against it.
type fairReport struct {
	GoMaxProcs int            `json:"gomaxprocs"`
	GoVersion  string         `json:"go_version"`
	Timestamp  string         `json:"timestamp"`
	Workers    int            `json:"workers"`
	Seeds      int            `json:"seeds"`
	QuotaA     float64        `json:"quota_tenant_a"`
	QuotaB     float64        `json:"quota_tenant_b"`
	FIFO       fairModeResult `json:"fifo"`
	Fair       fairModeResult `json:"fair"`
	// ShareSpeedup is FIFO's mean time-to-share for tenantA over the
	// fair policy's (higher = fair reaches the share that much sooner).
	ShareSpeedup float64 `json:"time_to_share_fifo_vs_fair"`
}

func runBenchFair(path string) error {
	const workers = 10
	queues := fair.TwoTenantQueues()
	report := fairReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Workers:    workers,
		Seeds:      fairSeeds,
		QuotaA:     queues[0].Quota,
		QuotaB:     queues[1].Quota,
	}
	fmt.Printf("benchmarking fair scheduling: %d workers, quotas %.0f/%.0f, tenantB flood vs tenantA gangs, %d seeds per mode...\n",
		workers, report.QuotaA*100, report.QuotaB*100, fairSeeds)

	measure := func(fairMode bool) (fairModeResult, error) {
		out := fairModeResult{Mode: "fifo"}
		if fairMode {
			out.Mode = "fair"
		}
		var makespans, resumes float64
		var resumeRuns int
		for seed := 0; seed < fairSeeds; seed++ {
			res, err := fair.Experiment{
				Workers: workers, Queues: queues,
				Seed: int64(seed), Fair: fairMode,
			}.Run()
			if err != nil {
				return out, fmt.Errorf("%s seed %d: %w", out.Mode, seed, err)
			}
			if t := res.TimeToQuota["tenantA"]; t >= 0 {
				out.MeanTimeToShareA += float64(t)
				out.AttainedA++
			}
			if t := res.TimeToQuota["tenantB"]; t >= 0 {
				out.MeanTimeToShareB += float64(t)
				out.AttainedB++
			}
			out.Preemptions += res.Preemptions
			if res.Preemptions > 0 {
				resumes += res.MeanResumeTicks
				resumeRuns++
			}
			makespans += float64(res.Makespan)
			out.Completed += res.Completed
		}
		if out.AttainedA > 0 {
			out.MeanTimeToShareA /= float64(out.AttainedA)
		}
		if out.AttainedB > 0 {
			out.MeanTimeToShareB /= float64(out.AttainedB)
		}
		if resumeRuns > 0 {
			out.MeanResumeTicks = resumes / float64(resumeRuns)
		}
		out.MeanMakespan = makespans / fairSeeds
		return out, nil
	}

	var err error
	if report.FIFO, err = measure(false); err != nil {
		return err
	}
	if report.Fair, err = measure(true); err != nil {
		return err
	}
	if report.Fair.MeanTimeToShareA > 0 && report.FIFO.AttainedA > 0 {
		report.ShareSpeedup = report.FIFO.MeanTimeToShareA / report.Fair.MeanTimeToShareA
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\n  %-4s %16s %16s %9s %13s %10s\n",
		"MODE", "T_SHARE(A)", "T_SHARE(B)", "PREEMPTS", "RESUME_TICKS", "MAKESPAN")
	for _, r := range []fairModeResult{report.FIFO, report.Fair} {
		fmt.Printf("  %-4s %11.1f %1d/%-2d %11.1f %1d/%-2d %9d %13.1f %10.1f\n",
			r.Mode, r.MeanTimeToShareA, r.AttainedA, fairSeeds,
			r.MeanTimeToShareB, r.AttainedB, fairSeeds,
			r.Preemptions, r.MeanResumeTicks, r.MeanMakespan)
	}
	fmt.Printf("\n  tenantA time-to-share fifo/fair: %.1fx\n", report.ShareSpeedup)
	fmt.Printf("  wrote %s\n", path)
	return nil
}
