// harmony-bench regenerates the paper's evaluation tables and figures
// (DESIGN.md §4 maps experiment ids to paper references).
//
//	harmony-bench -run all
//	harmony-bench -run fig10 -seed 3
//	harmony-bench -parallel 1 -run fig10   # single-threaded baseline
//	harmony-bench -bench                   # speedup report + BENCH_schedule.json
//	harmony-bench -bench-comm              # data-plane report + BENCH_commpath.json
//	harmony-bench -bench-comp              # compute-path report + BENCH_comppath.json
//	harmony-bench -bench-rebalance         # PS hot-stripe rebalance A/B + BENCH_psrebalance.json
//	harmony-bench -bench-fair              # two-tenant fair-vs-FIFO A/B + BENCH_fair.json
//	harmony-bench -bench-place             # net-aware placement A/B + BENCH_placement.json
//	harmony-bench -bench-admit             # cluster-scale admission A/B + BENCH_admit.json
//	harmony-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"harmony/internal/exp"
)

type experiment struct {
	id   string
	desc string
	run  func(seed int64) (fmt.Stringer, error)
}

func experiments() []experiment {
	return []experiment{
		{"tab1", "Table I: workload inventory", func(s int64) (fmt.Stringer, error) {
			return exp.Tab1(), nil
		}},
		{"fig2", "Fig. 2: single-job utilization", func(s int64) (fmt.Stringer, error) {
			return exp.Fig2(s)
		}},
		{"fig3", "Fig. 3: machines sweep", func(s int64) (fmt.Stringer, error) {
			return exp.Fig3(s)
		}},
		{"fig4", "Fig. 4: naive co-location and OOM", func(s int64) (fmt.Stringer, error) {
			return exp.Fig4(s)
		}},
		{"fig9", "Fig. 9: workload characteristics", func(s int64) (fmt.Stringer, error) {
			return exp.Fig9(), nil
		}},
		{"fig10", "Fig. 10: JCT and makespan speedups", func(s int64) (fmt.Stringer, error) {
			return exp.Fig10(s, 5)
		}},
		{"fig11", "Fig. 11: utilization over time", func(s int64) (fmt.Stringer, error) {
			return exp.Fig11(s)
		}},
		{"fig12", "Fig. 12: grouping decision distributions", func(s int64) (fmt.Stringer, error) {
			return exp.Fig12(s)
		}},
		{"fig13a", "Fig. 13a: model-error sensitivity", func(s int64) (fmt.Stringer, error) {
			return exp.Fig13a(s)
		}},
		{"fig13b", "Fig. 13b: prediction accuracy", func(s int64) (fmt.Stringer, error) {
			return exp.Fig13b(s)
		}},
		{"fig14", "Fig. 14 / §V-F: Harmony vs Oracle", func(s int64) (fmt.Stringer, error) {
			return exp.Fig14(s)
		}},
		{"scale", "§V-F: scheduling scalability", func(s int64) (fmt.Stringer, error) {
			return exp.ScaleSched(s), nil
		}},
		{"ablation", "§V-C: technique ablation", func(s int64) (fmt.Stringer, error) {
			return exp.Ablation(s)
		}},
		{"design-ablation", "DESIGN.md §5: design-choice ablations", func(s int64) (fmt.Stringer, error) {
			return exp.DesignAblation(s)
		}},
		{"sens-ratio", "§V-D: resource-ratio sensitivity", func(s int64) (fmt.Stringer, error) {
			return exp.SensRatio(s)
		}},
		{"sens-arrival", "§V-D: arrival-rate sensitivity", func(s int64) (fmt.Stringer, error) {
			return exp.SensArrival(s)
		}},
		{"reload", "§V-G: dynamic data reloading", func(s int64) (fmt.Stringer, error) {
			return exp.Reload(s)
		}},
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "harmony-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("harmony-bench", flag.ContinueOnError)
	runID := fs.String("run", "all", "experiment id to run, or 'all'")
	seed := fs.Int64("seed", exp.DefaultSeed, "random seed")
	list := fs.Bool("list", false, "list experiment ids and exit")
	parallelism := fs.Int("parallel", 0,
		"worker count for sweeps and the scheduler search (0 = GOMAXPROCS, 1 = sequential; results are identical at any setting)")
	bench := fs.Bool("bench", false, "measure scheduler and sweep speedups, write BENCH_schedule.json, and exit")
	benchOut := fs.String("bench-out", "BENCH_schedule.json", "output path for -bench results")
	benchComm := fs.Bool("bench-comm", false, "measure the pull/push data plane against the gob baseline, write BENCH_commpath.json, and exit")
	benchCommOut := fs.String("bench-comm-out", "BENCH_commpath.json", "output path for -bench-comm results")
	benchComp := fs.Bool("bench-comp", false, "measure the fast COMP path against the gob-decode serial baseline, write BENCH_comppath.json, and exit")
	benchCompOut := fs.String("bench-comp-out", "BENCH_comppath.json", "output path for -bench-comp results")
	benchRebalance := fs.Bool("bench-rebalance", false, "measure skewed-access PS throughput with hot-stripe rebalancing off vs on, write BENCH_psrebalance.json, and exit")
	benchRebalanceOut := fs.String("bench-rebalance-out", "BENCH_psrebalance.json", "output path for -bench-rebalance results")
	benchFair := fs.Bool("bench-fair", false, "measure two-tenant contention under the fair scheduler vs the FIFO baseline, write BENCH_fair.json, and exit")
	benchFairOut := fs.String("bench-fair-out", "BENCH_fair.json", "output path for -bench-fair results")
	benchPlace := fs.Bool("bench-place", false, "measure comm-heavy co-location under link contention with the net-aware scheduler vs the aggregate-bandwidth baseline, write BENCH_placement.json, and exit")
	benchPlaceOut := fs.String("bench-place-out", "BENCH_placement.json", "output path for -bench-place results")
	benchAdmit := fs.Bool("bench-admit", false, "measure cluster-scale admission (10K held jobs, 1K workers) on the incremental fast path vs the clone-and-rescore baseline, write BENCH_admit.json, and exit")
	benchAdmitOut := fs.String("bench-admit-out", "BENCH_admit.json", "output path for -bench-admit results")
	if err := fs.Parse(args); err != nil {
		return err
	}
	exp.SetConcurrency(*parallelism)
	if *bench {
		return runBench(*benchOut)
	}
	if *benchComm {
		return runBenchComm(*benchCommOut)
	}
	if *benchComp {
		return runBenchComp(*benchCompOut)
	}
	if *benchRebalance {
		return runBenchRebalance(*benchRebalanceOut)
	}
	if *benchFair {
		return runBenchFair(*benchFairOut)
	}
	if *benchPlace {
		return runBenchPlace(*benchPlaceOut)
	}
	if *benchAdmit {
		return runBenchAdmit(*benchAdmitOut)
	}
	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("  %-16s %s\n", e.id, e.desc)
		}
		return nil
	}
	var selected []experiment
	if *runID == "all" {
		selected = exps
	} else {
		for _, want := range strings.Split(*runID, ",") {
			found := false
			for _, e := range exps {
				if e.id == want {
					selected = append(selected, e)
					found = true
					break
				}
			}
			if !found {
				known := make([]string, len(exps))
				for i, e := range exps {
					known[i] = e.id
				}
				sort.Strings(known)
				return fmt.Errorf("unknown experiment %q (known: %s)", want, strings.Join(known, ", "))
			}
		}
	}
	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		result, err := e.run(*seed)
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Print(result.String())
		fmt.Printf("[%s completed in %s]\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
