package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"harmony/internal/master"
)

// Admission fast-path benchmark (-bench-admit): the cluster-scale A/B of
// DESIGN.md §15. A live master is seeded with 100 jobs across 50 groups
// of 20 machines (1K workers behind a stub RPC fleet), then flooded with
// 10K held arrivals and churned through completions that each trigger a
// full drain pass over the held queue. The legacy mode re-enables the
// clone-and-rescore admission path; the headline metrics are drain
// admissions/sec and Enqueue p50/p99 latency, fast vs legacy.

// admitReport is the machine-readable record written to BENCH_admit.json;
// future PRs diff against it.
type admitReport struct {
	GoMaxProcs int                     `json:"gomaxprocs"`
	GoVersion  string                  `json:"go_version"`
	Timestamp  string                  `json:"timestamp"`
	Legacy     master.AdmitBenchResult `json:"legacy"`
	Fast       master.AdmitBenchResult `json:"fast"`
	// AdmitSpeedup is legacy drain seconds over fast drain seconds (both
	// modes admit the identical job set, so this is the admissions/sec
	// ratio). EnqueueP99Speedup compares held-arrival tail latency.
	AdmitSpeedup      float64 `json:"drain_admissions_per_sec_fast_vs_legacy"`
	EnqueueP50Speedup float64 `json:"enqueue_p50_fast_vs_legacy"`
	EnqueueP99Speedup float64 `json:"enqueue_p99_fast_vs_legacy"`
}

func runBenchAdmit(path string) error {
	cfg := master.AdmitBenchConfig{}
	report := admitReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	fmt.Println("benchmarking admission fast path: 1K workers, 50 groups, 10K held arrivals, completion churn...")

	var err error
	cfg.Legacy = true
	if report.Legacy, err = master.RunAdmitBench(cfg); err != nil {
		return err
	}
	cfg.Legacy = false
	if report.Fast, err = master.RunAdmitBench(cfg); err != nil {
		return err
	}
	if report.Legacy.Admissions != report.Fast.Admissions {
		return fmt.Errorf("bench-admit: decision divergence: legacy admitted %d, fast admitted %d",
			report.Legacy.Admissions, report.Fast.Admissions)
	}
	if report.Fast.DrainSeconds > 0 {
		report.AdmitSpeedup = report.Legacy.DrainSeconds / report.Fast.DrainSeconds
	}
	if report.Fast.EnqueueP50Micros > 0 {
		report.EnqueueP50Speedup = report.Legacy.EnqueueP50Micros / report.Fast.EnqueueP50Micros
	}
	if report.Fast.EnqueueP99Micros > 0 {
		report.EnqueueP99Speedup = report.Legacy.EnqueueP99Micros / report.Fast.EnqueueP99Micros
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\n  %-6s %12s %12s %12s %12s %12s %12s\n",
		"MODE", "ENQ_P50(µs)", "ENQ_P99(µs)", "DRAIN(s)", "ADMITS", "ADMITS/s", "SCORE_CALLS")
	for _, r := range []master.AdmitBenchResult{report.Legacy, report.Fast} {
		fmt.Printf("  %-6s %12.0f %12.0f %12.3f %12d %12.0f %12d\n",
			r.Mode, r.EnqueueP50Micros, r.EnqueueP99Micros, r.DrainSeconds,
			r.Admissions, r.AdmissionsPerSec, r.FullScoreCalls)
	}
	fmt.Printf("\n  drain admissions/sec fast/legacy: %.1fx\n", report.AdmitSpeedup)
	fmt.Printf("  enqueue p50 fast/legacy: %.1fx, p99: %.1fx\n",
		report.EnqueueP50Speedup, report.EnqueueP99Speedup)
	fmt.Printf("  wrote %s\n", path)
	return nil
}
