package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"harmony/internal/ps"
)

// PS-rebalance benchmark (-bench-rebalance): the skewed-access A/B of
// DESIGN.md §12. A fixed skew (hot 10% of stripes taking 80% of
// traffic) lands every hot stripe on one server; with rebalancing off
// that server is the bottleneck, with rebalancing on the hot stripes
// live-migrate apart. Offered load sits between one server's capacity
// and the cluster's, the regime where placement is the bottleneck.
const rebalanceRounds = 3

// rebalanceModeResult is one mode's aggregate over the A/B rounds.
type rebalanceModeResult struct {
	Rebalance bool    `json:"rebalance"`
	Ops       int64   `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// P99LockWaitMicros is the worst round's p99 per-op stripe wait.
	P99LockWaitMicros float64 `json:"p99_lock_wait_micros"`
	Moves             int     `json:"moves"`
}

// rebalanceReport is the machine-readable record written to
// BENCH_psrebalance.json; future PRs diff against it.
type rebalanceReport struct {
	GoMaxProcs int                 `json:"gomaxprocs"`
	GoVersion  string              `json:"go_version"`
	Timestamp  string              `json:"timestamp"`
	Stripes    int                 `json:"stripes"`
	HotFrac    float64             `json:"hot_frac"`
	HotShare   float64             `json:"hot_share"`
	Servers    int                 `json:"servers"`
	Workers    int                 `json:"workers"`
	Off        rebalanceModeResult `json:"off"`
	On         rebalanceModeResult `json:"on"`
	Speedup    float64             `json:"speedup_on_vs_off"`
	P99Ratio   float64             `json:"p99_lock_wait_on_vs_off"`
}

func rebalanceExperiment(seed int64, on bool) ps.RebalanceExperiment {
	return ps.RebalanceExperiment{
		SkewConfig: ps.SkewConfig{
			Stripes: 40, StripeElems: 128, Workers: 5,
			HotFrac: 0.1, HotShare: 0.8,
			Duration: 800 * time.Millisecond, Seed: seed,
		},
		Servers: 4, ServiceLimit: 1, ServiceDelay: time.Millisecond,
		Rebalance: on,
		Interval:  75 * time.Millisecond, MaxMoves: 2,
	}
}

func runBenchRebalance(path string) error {
	cfg := rebalanceExperiment(0, false)
	report := rebalanceReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Stripes:    cfg.Stripes,
		HotFrac:    cfg.HotFrac,
		HotShare:   cfg.HotShare,
		Servers:    cfg.Servers,
		Workers:    cfg.Workers,
	}
	fmt.Printf("benchmarking PS rebalancing: %d stripes, hot %.0f%% take %.0f%% of traffic, %d servers, %d rounds per mode...\n",
		cfg.Stripes, cfg.HotFrac*100, cfg.HotShare*100, cfg.Servers, rebalanceRounds)

	measure := func(on bool) (rebalanceModeResult, error) {
		var out rebalanceModeResult
		out.Rebalance = on
		for i := 0; i < rebalanceRounds; i++ {
			res, err := rebalanceExperiment(int64(i), on).Run()
			if err != nil {
				return out, fmt.Errorf("rebalance=%v round %d: %w", on, i, err)
			}
			if !res.Verified {
				return out, fmt.Errorf("rebalance=%v round %d: final state not verified", on, i)
			}
			out.Ops += res.Ops
			out.Seconds += res.Duration.Seconds()
			if p99 := res.P99LockWaitSeconds * 1e6; p99 > out.P99LockWaitMicros {
				out.P99LockWaitMicros = p99
			}
			out.Moves += res.Moves
		}
		out.OpsPerSec = float64(out.Ops) / out.Seconds
		return out, nil
	}

	var err error
	if report.Off, err = measure(false); err != nil {
		return err
	}
	if report.On, err = measure(true); err != nil {
		return err
	}
	report.Speedup = report.On.OpsPerSec / report.Off.OpsPerSec
	if report.Off.P99LockWaitMicros > 0 {
		report.P99Ratio = report.On.P99LockWaitMicros / report.Off.P99LockWaitMicros
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\n  %-4s %12s %16s %7s\n", "MODE", "OPS/S", "P99_LOCK_WAIT", "MOVES")
	for _, r := range []rebalanceModeResult{report.Off, report.On} {
		mode := "off"
		if r.Rebalance {
			mode = "on"
		}
		fmt.Printf("  %-4s %12.0f %15.0fµs %7d\n", mode, r.OpsPerSec, r.P99LockWaitMicros, r.Moves)
	}
	fmt.Printf("\n  throughput on/off: %.2fx   p99 lock-wait on/off: %.2fx\n",
		report.Speedup, report.P99Ratio)
	fmt.Printf("  wrote %s\n", path)
	return nil
}
