package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"harmony/internal/core"
	"harmony/internal/exp"
)

// benchResult is one measured configuration in BENCH_schedule.json.
type benchResult struct {
	Name        string  `json:"name"`
	Parallelism int     `json:"parallelism"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	Speedup     float64 `json:"speedup_vs_sequential,omitempty"`
}

// benchReport is the machine-readable perf trajectory record future PRs
// diff against.
type benchReport struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	GoVersion  string        `json:"go_version"`
	Timestamp  string        `json:"timestamp"`
	Results    []benchResult `json:"results"`
}

// runBench measures the Algorithm 1 search (1K jobs, 1K machines) and the
// Fig. 10 multi-seed sweep, sequentially and at full parallelism, then
// writes the report to path and prints a speedup summary.
func runBench(path string) error {
	procs := runtime.GOMAXPROCS(0)
	report := benchReport{
		GoMaxProcs: procs,
		GoVersion:  runtime.Version(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}

	rng := rand.New(rand.NewSource(42))
	jobs := make([]core.JobInfo, 1000)
	for i := range jobs {
		jobs[i] = core.JobInfo{
			ID:   fmt.Sprintf("j%04d", i),
			Comp: 500 + rng.Float64()*10000,
			Net:  30 + rng.Float64()*400,
		}
	}
	const machines = 1000

	schedBench := func(par int) benchResult {
		opts := core.Options{Parallelism: par}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.Schedule(jobs, machines, opts)
			}
		})
		return benchResult{
			Name:        "schedule_1k_jobs",
			Parallelism: par,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}
	fmt.Printf("benchmarking core.Schedule (1000 jobs, %d machines)...\n", machines)
	seq := schedBench(1)
	par := schedBench(procs)
	par.Speedup = float64(seq.NsPerOp) / float64(par.NsPerOp)
	report.Results = append(report.Results, seq, par)

	sweepBench := func(workers int) benchResult {
		exp.SetConcurrency(workers)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exp.Fig10(exp.DefaultSeed, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
		return benchResult{
			Name:        "fig10_sweep_7_sims",
			Parallelism: workers,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}
	fmt.Println("benchmarking exp.Fig10 sweep (iso + harmony + 5 naive seeds)...")
	sweepSeq := sweepBench(1)
	sweepPar := sweepBench(procs)
	sweepPar.Speedup = float64(sweepSeq.NsPerOp) / float64(sweepPar.NsPerOp)
	report.Results = append(report.Results, sweepSeq, sweepPar)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("\nGOMAXPROCS=%d (%s)\n", procs, runtime.Version())
	for _, r := range report.Results {
		speedup := ""
		if r.Speedup > 0 {
			speedup = fmt.Sprintf("  %.2fx vs sequential", r.Speedup)
		}
		fmt.Printf("  %-20s parallelism=%-3d %12d ns/op %10d B/op %8d allocs/op%s\n",
			r.Name, r.Parallelism, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, speedup)
	}
	fmt.Printf("report written to %s\n", path)
	if procs == 1 {
		fmt.Println("note: GOMAXPROCS=1 — parallel and sequential take the same single-threaded path; run on a multi-core machine to see speedup")
	}
	return nil
}
