package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"harmony/internal/ps"
	"harmony/internal/rpc"
)

// Comm-path benchmark (-bench-comm): one steady-state COMM iteration — a
// full-model pull plus a full-delta push across commServers loopback
// parameter servers — measured on the binary data plane and on a
// faithful replica of the pre-refactor gob implementation (one
// server-wide RWMutex, gob request/reply structs, full-partition copy
// per pull). The replica lives here so the comparison survives even as
// the ps package evolves.
const (
	commModelParams = 1 << 20 // 1M float64 parameters, 8 MB
	commServers     = 4
)

// commReport is the machine-readable record written to
// BENCH_commpath.json; future PRs diff against it.
type commReport struct {
	GoMaxProcs  int           `json:"gomaxprocs"`
	GoVersion   string        `json:"go_version"`
	Timestamp   string        `json:"timestamp"`
	ModelParams int           `json:"model_params"`
	Servers     int           `json:"servers"`
	Results     []benchResult `json:"results"`
	// Speedup is gob ns/op over binary ns/op; AllocRatio is gob
	// allocs/op over binary allocs/op.
	Speedup    float64 `json:"speedup_vs_gob"`
	AllocRatio float64 `json:"alloc_ratio_vs_gob"`
}

func runBenchComm(path string) error {
	procs := runtime.GOMAXPROCS(0)
	report := commReport{
		GoMaxProcs:  procs,
		GoVersion:   runtime.Version(),
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		ModelParams: commModelParams,
		Servers:     commServers,
	}
	model := make([]float64, commModelParams)
	delta := make([]float64, commModelParams)
	for i := range model {
		model[i] = float64(i % 97)
		delta[i] = 1e-3
	}

	fmt.Printf("benchmarking COMM path: pull+push of %d params over %d servers...\n",
		commModelParams, commServers)

	binary, cleanup, err := measureBinaryComm(model, delta)
	if err != nil {
		return err
	}
	cleanup()
	gob, cleanup, err := measureGobComm(model, delta)
	if err != nil {
		return err
	}
	cleanup()

	report.Results = []benchResult{binary, gob}
	report.Speedup = float64(gob.NsPerOp) / float64(binary.NsPerOp)
	if binary.AllocsPerOp > 0 {
		report.AllocRatio = float64(gob.AllocsPerOp) / float64(binary.AllocsPerOp)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("\nGOMAXPROCS=%d (%s)\n", procs, runtime.Version())
	for _, r := range report.Results {
		fmt.Printf("  %-24s %12d ns/op %12d B/op %8d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("binary data plane: %.1fx faster, %.1fx fewer allocs/op than gob\n",
		report.Speedup, report.AllocRatio)
	fmt.Printf("report written to %s\n", path)
	return nil
}

// startCommServers brings up n parameter servers on loopback and returns
// their addresses plus a teardown func.
func startCommServers(n int, register func(*rpc.Server)) ([]string, func(), error) {
	addrs := make([]string, 0, n)
	servers := make([]*rpc.Server, 0, n)
	cleanup := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	for i := 0; i < n; i++ {
		srv := rpc.NewServer()
		register(srv)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		servers = append(servers, srv)
		addrs = append(addrs, addr)
	}
	return addrs, cleanup, nil
}

func measureBinaryComm(model, delta []float64) (benchResult, func(), error) {
	addrs, cleanup, err := startCommServers(commServers, func(srv *rpc.Server) {
		ps.NewServer().Register(srv)
	})
	if err != nil {
		return benchResult{}, nil, err
	}
	c, err := ps.NewClient(addrs, time.Minute)
	if err != nil {
		cleanup()
		return benchResult{}, nil, err
	}
	if err := c.Init("bench", model); err != nil {
		c.Close()
		cleanup()
		return benchResult{}, nil, err
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := c.PullInto("bench", model); err != nil {
				b.Fatal(err)
			}
			if err := c.Push("bench", delta); err != nil {
				b.Fatal(err)
			}
		}
	})
	return benchResult{
			Name:        "commpath_binary",
			Parallelism: commServers,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}, func() {
			c.Close()
			cleanup()
		}, nil
}

// --- gob baseline, replicated from the pre-refactor ps package --------

type gobPartition struct {
	lo     int
	values []float64
}

type gobServer struct {
	mu    sync.RWMutex
	parts map[string]*gobPartition
}

func registerGobServer(srv *rpc.Server) {
	s := &gobServer{parts: make(map[string]*gobPartition)}
	srv.Handle("psgob.init", rpc.Typed(func(a ps.InitArgs) (ps.Ack, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		vals := make([]float64, len(a.Values))
		copy(vals, a.Values)
		s.parts[a.Job] = &gobPartition{lo: a.Lo, values: vals}
		return ps.Ack{}, nil
	}))
	srv.Handle("psgob.pull", rpc.Typed(func(a ps.PullArgs) (ps.PullReply, error) {
		s.mu.RLock()
		defer s.mu.RUnlock()
		p, ok := s.parts[a.Job]
		if !ok {
			return ps.PullReply{}, fmt.Errorf("no partition for job %q", a.Job)
		}
		vals := make([]float64, len(p.values))
		copy(vals, p.values)
		return ps.PullReply{Lo: p.lo, Values: vals}, nil
	}))
	srv.Handle("psgob.push", rpc.Typed(func(a ps.PushArgs) (ps.Ack, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		p, ok := s.parts[a.Job]
		if !ok {
			return ps.Ack{}, fmt.Errorf("no partition for job %q", a.Job)
		}
		start := a.Lo - p.lo
		if start < 0 || start+len(a.Delta) > len(p.values) {
			return ps.Ack{}, fmt.Errorf("push shape mismatch for job %q", a.Job)
		}
		for i, d := range a.Delta {
			p.values[start+i] += d
		}
		return ps.Ack{}, nil
	}))
}

func measureGobComm(model, delta []float64) (benchResult, func(), error) {
	addrs, cleanup, err := startCommServers(commServers, registerGobServer)
	if err != nil {
		return benchResult{}, nil, err
	}
	clients := make([]*rpc.Client, 0, len(addrs))
	closeAll := func() {
		for _, cl := range clients {
			cl.Close()
		}
		cleanup()
	}
	for _, addr := range addrs {
		cl, err := rpc.Dial(addr, time.Minute)
		if err != nil {
			closeAll()
			return benchResult{}, nil, err
		}
		clients = append(clients, cl)
	}
	k := len(clients)
	for i, cl := range clients {
		lo, hi := ps.Partition(len(model), k, i)
		if _, err := rpc.Invoke[ps.InitArgs, ps.Ack](cl, "psgob.init",
			ps.InitArgs{Job: "bench", Lo: lo, Values: model[lo:hi]}, time.Minute); err != nil {
			closeAll()
			return benchResult{}, nil, err
		}
	}
	pullPush := func() error {
		out := make([]float64, len(model))
		errs := make([]error, k)
		var wg sync.WaitGroup
		for i, cl := range clients {
			wg.Add(1)
			go func(i int, cl *rpc.Client) {
				defer wg.Done()
				reply, err := rpc.Invoke[ps.PullArgs, ps.PullReply](cl, "psgob.pull",
					ps.PullArgs{Job: "bench"}, time.Minute)
				if err != nil {
					errs[i] = err
					return
				}
				copy(out[reply.Lo:], reply.Values)
			}(i, cl)
		}
		wg.Wait()
		for i, cl := range clients {
			lo, hi := ps.Partition(len(delta), k, i)
			wg.Add(1)
			go func(i int, cl *rpc.Client, lo, hi int) {
				defer wg.Done()
				if _, err := rpc.Invoke[ps.PushArgs, ps.Ack](cl, "psgob.push",
					ps.PushArgs{Job: "bench", Lo: lo, Delta: delta[lo:hi]}, time.Minute); err != nil {
					errs[i] = err
				}
			}(i, cl, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := pullPush(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return benchResult{
		Name:        "commpath_gob_baseline",
		Parallelism: commServers,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}, closeAll, nil
}
