package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"harmony/internal/mlapp"
	"harmony/internal/rpc"
)

// Comp-path benchmark (-bench-comp): one steady-state COMP subtask per
// mlapp algorithm — shard access plus the full update-and-loss
// computation — measured on the fast path (columnar payloads decoded
// once, fused multicore kernel) and on a faithful replica of the seed
// implementation (gob-decode every block per iteration, serial
// ComputeInto, separate Loss pass). The replica lives here so the
// comparison survives as the mlapp and worker packages evolve.
const (
	compRows         = 512
	compFeatures     = 32
	compClasses      = 8
	compRowsPerBlock = 32
)

// compReport is the machine-readable record written to
// BENCH_comppath.json; future PRs diff against it.
type compReport struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	GoVersion  string        `json:"go_version"`
	Timestamp  string        `json:"timestamp"`
	Rows       int           `json:"rows"`
	Features   int           `json:"features"`
	Classes    int           `json:"classes"`
	Results    []benchResult `json:"results"`
	// Speedups maps algorithm kind to gob-baseline ns/op over fast-path
	// ns/op at this GOMAXPROCS.
	Speedups map[string]float64 `json:"speedup_vs_gob"`
}

func runBenchComp(path string) error {
	procs := runtime.GOMAXPROCS(0)
	report := compReport{
		GoMaxProcs: procs,
		GoVersion:  runtime.Version(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Rows:       compRows,
		Features:   compFeatures,
		Classes:    compClasses,
		Speedups:   make(map[string]float64),
	}
	fmt.Printf("benchmarking COMP path: %d rows × %d features, %d classes, GOMAXPROCS=%d...\n",
		compRows, compFeatures, compClasses, procs)

	for _, kind := range []mlapp.Kind{mlapp.MLR, mlapp.Lasso, mlapp.NMF, mlapp.LDA} {
		cfg := mlapp.Config{Kind: kind, Rows: compRows,
			Features: compFeatures, Classes: compClasses}
		fast, err := measureCompFast(cfg)
		if err != nil {
			return err
		}
		gob, err := measureCompGob(cfg)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, fast, gob)
		report.Speedups[kind.String()] = float64(gob.NsPerOp) / float64(fast.NsPerOp)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("\nGOMAXPROCS=%d (%s)\n", procs, runtime.Version())
	for _, r := range report.Results {
		fmt.Printf("  %-28s %12d ns/op %12d B/op %8d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	for _, kind := range []mlapp.Kind{mlapp.MLR, mlapp.Lasso, mlapp.NMF, mlapp.LDA} {
		fmt.Printf("%-6s fast path: %.1fx faster than the gob-decode serial baseline\n",
			kind.String(), report.Speedups[kind.String()])
	}
	fmt.Printf("report written to %s\n", path)
	return nil
}

// compSetup generates the shard and encodes it into per-block payloads
// with the given encoder, mirroring the worker's load path.
func compSetup(cfg mlapp.Config, encode func([]mlapp.Example) ([]byte, error)) (mlapp.Algorithm, *mlapp.Shard, [][]byte, error) {
	algo, err := mlapp.New(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	shards, err := mlapp.GenerateShards(cfg, 1, 11)
	if err != nil {
		return nil, nil, nil, err
	}
	shard := shards[0]
	var payloads [][]byte
	for lo := 0; lo < len(shard.Examples); lo += compRowsPerBlock {
		hi := lo + compRowsPerBlock
		if hi > len(shard.Examples) {
			hi = len(shard.Examples)
		}
		p, err := encode(shard.Examples[lo:hi])
		if err != nil {
			return nil, nil, nil, err
		}
		payloads = append(payloads, p)
	}
	return algo, shard, payloads, nil
}

// measureCompFast times the fast path: columnar blocks decoded once into
// a cached view, then the fused multicore kernel per iteration.
func measureCompFast(cfg mlapp.Config) (benchResult, error) {
	algo, shard, payloads, err := compSetup(cfg, func(ex []mlapp.Example) ([]byte, error) {
		return mlapp.AppendExamples(nil, ex), nil
	})
	if err != nil {
		return benchResult{}, err
	}
	// Decode once (the cache's cold pass); iterations reuse the view.
	var examples []mlapp.Example
	for _, p := range payloads {
		ex, err := mlapp.DecodeExamples(p)
		if err != nil {
			return benchResult{}, err
		}
		examples = append(examples, ex...)
	}
	cached := &mlapp.Shard{Kind: shard.Kind, RowOffset: shard.RowOffset, Examples: examples}
	rng := rand.New(rand.NewSource(7))
	model := algo.InitModel(rng)
	var delta []float64
	var scratch mlapp.Scratch
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			delta, _ = mlapp.ComputeFused(algo, delta, model, cached, rng, 0, &scratch)
		}
	})
	return benchResult{
		Name:        "comppath_fast_" + cfg.Kind.String(),
		Parallelism: runtime.GOMAXPROCS(0),
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}, nil
}

// measureCompGob replays the seed COMP subtask: gob payloads decoded on
// every iteration, freshly assembled shard, serial update pass, then a
// second full pass for the loss.
func measureCompGob(cfg mlapp.Config) (benchResult, error) {
	algo, shard, payloads, err := compSetup(cfg, func(ex []mlapp.Example) ([]byte, error) {
		return rpc.Encode(ex)
	})
	if err != nil {
		return benchResult{}, err
	}
	rng := rand.New(rand.NewSource(7))
	model := algo.InitModel(rng)
	var delta []float64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := &mlapp.Shard{Kind: shard.Kind, RowOffset: shard.RowOffset}
			for _, p := range payloads {
				var examples []mlapp.Example
				if err := rpc.Decode(p, &examples); err != nil {
					b.Fatal(err)
				}
				out.Examples = append(out.Examples, examples...)
			}
			delta = algo.ComputeInto(delta, model, out, rng)
			_ = algo.Loss(model, out)
		}
	})
	_ = delta
	return benchResult{
		Name:        "comppath_gob_baseline_" + cfg.Kind.String(),
		Parallelism: 1,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}, nil
}
