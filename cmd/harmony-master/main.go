// harmony-master runs the live Harmony master: it waits for workers to
// register, then accepts job submissions. With -demo it submits a small
// co-located training mix itself and reports progress — handy for trying
// the runtime end to end together with harmony-worker processes.
//
//	harmony-master -listen 127.0.0.1:7070 -workers 3 -demo
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"harmony"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "harmony-master:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("harmony-master", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7070", "address to serve workers on")
	workers := fs.Int("workers", 2, "number of workers to wait for")
	wait := fs.Duration("wait", 5*time.Minute, "how long to wait for workers")
	demo := fs.Bool("demo", false, "submit a demo workload once workers join")
	iterations := fs.Int("iterations", 20, "demo job iterations")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := harmony.StartMaster(*listen, harmony.ScheduleOptions{})
	if err != nil {
		return err
	}
	defer m.Close()
	fmt.Printf("master listening on %s, waiting for %d workers...\n", m.Addr(), *workers)
	if err := m.WaitForWorkers(*workers, *wait); err != nil {
		return err
	}
	fmt.Printf("workers registered: %v\n", m.Workers())

	if !*demo {
		fmt.Println("running until interrupted (submit jobs programmatically via the harmony package)")
		select {}
	}

	specs := []harmony.Training{
		{
			Name:       "mlr",
			Config:     harmony.TrainingConfig{Algorithm: "mlr", Features: 32, Classes: 4, Rows: 512},
			Iterations: *iterations,
			Alpha:      0.3,
			Seed:       1,
		},
		{
			Name:       "lasso",
			Config:     harmony.TrainingConfig{Algorithm: "lasso", Features: 32, Rows: 384, Lambda: 0.02},
			Iterations: *iterations,
			Seed:       2,
		},
		{
			Name:       "lda",
			Config:     harmony.TrainingConfig{Algorithm: "lda", Features: 48, Classes: 4, Rows: 256},
			Iterations: *iterations,
			Seed:       3,
		},
	}
	for _, s := range specs {
		if err := m.Submit(s); err != nil {
			return err
		}
		fmt.Printf("submitted %s (%s)\n", s.Name, s.Config.Algorithm)
	}
	for _, s := range specs {
		if err := m.Wait(s.Name, 10*time.Minute); err != nil {
			return err
		}
		iter, loss, _, err := m.Progress(s.Name)
		if err != nil {
			return err
		}
		prof, _ := m.ProfiledJob(s.Name)
		fmt.Printf("%-6s finished at iteration %d, loss %.4f, profiled comp/comm %.1f/%.1f ms\n",
			s.Name, iter, loss, prof.CompSeconds*1000, prof.NetSeconds*1000)
	}
	cpu, net, err := m.Utilization()
	if err == nil {
		fmt.Printf("worker executors: CPU %.0f%%, network %.0f%%\n", cpu*100, net*100)
	}
	return nil
}
