// harmony-master runs the live Harmony master: it waits for workers to
// register, serves the HTTP control plane for online job submission
// (harmonyctl speaks it), and shuts down cleanly on SIGINT/SIGTERM —
// draining the admission queue, checkpointing running jobs, and closing
// the master. With -demo it submits a small co-located training mix
// itself and reports progress.
//
//	harmony-master -listen 127.0.0.1:7070 -api 127.0.0.1:8080 -workers 3
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"harmony"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "harmony-master:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("harmony-master", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7070", "address to serve workers on")
	api := fs.String("api", "127.0.0.1:8080", "address to serve the HTTP control plane on (empty disables)")
	pprofOn := fs.Bool("pprof", false, "expose /debug/pprof/ on the control plane")
	traceOn := fs.Bool("trace", false, "collect subtask spans from tracing workers; serves /v1/trace and phase histograms")
	workers := fs.Int("workers", 2, "number of workers to wait for")
	wait := fs.Duration("wait", 5*time.Minute, "how long to wait for workers")
	drain := fs.Duration("drain", 30*time.Second, "per-job checkpoint budget during shutdown")
	queues := fs.String("queues", "", `fair-scheduler queues, e.g. "tenantA:quota=0.7;tenantB:quota=0.3" (empty = single default queue)`)
	demo := fs.Bool("demo", false, "submit a demo workload once workers join")
	iterations := fs.Int("iterations", 20, "demo job iterations")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := harmony.StartMaster(*listen, harmony.ScheduleOptions{})
	if err != nil {
		return err
	}
	defer m.Close()
	if *queues != "" {
		cfgs, err := harmony.ParseQueues(*queues)
		if err != nil {
			return fmt.Errorf("-queues: %w", err)
		}
		if err := m.ConfigureQueues(cfgs...); err != nil {
			return fmt.Errorf("-queues: %w", err)
		}
		for _, q := range m.Queues() {
			fmt.Printf("queue %s: share %.0f%%\n", q.Name, q.Share*100)
		}
	}
	if *traceOn {
		m.EnableTracing()
	}
	fmt.Printf("master listening on %s, waiting for %d workers...\n", m.Addr(), *workers)
	if err := m.WaitForWorkers(*workers, *wait); err != nil {
		return err
	}
	fmt.Printf("workers registered: %v\n", m.Workers())

	var cp *harmony.ControlPlane
	if *api != "" {
		var apiOpts []harmony.APIOption
		if *pprofOn {
			apiOpts = append(apiOpts, harmony.WithPprof())
		}
		cp, err = m.ServeAPI(*api, apiOpts...)
		if err != nil {
			return err
		}
		defer cp.Close()
		fmt.Printf("control plane on http://%s (try: harmonyctl -addr http://%s cluster)\n",
			cp.Addr(), cp.Addr())
		if *pprofOn {
			fmt.Printf("pprof on http://%s/debug/pprof/\n", cp.Addr())
		}
		if *traceOn {
			fmt.Printf("tracing on (workers need -trace too): harmonyctl -addr http://%s trace -o trace.json\n", cp.Addr())
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if *demo {
		if err := runDemo(m, *iterations, sig); err != nil {
			return err
		}
		shutdown(m, cp, *drain)
		return nil
	}

	fmt.Println("running; submit jobs with harmonyctl, stop with SIGINT/SIGTERM")
	<-sig
	fmt.Println("signal received, shutting down")
	shutdown(m, cp, *drain)
	return nil
}

// shutdown closes the control plane (no new admissions), checkpoints
// running jobs, and closes the master.
func shutdown(m *harmony.Master, cp *harmony.ControlPlane, drain time.Duration) {
	if cp != nil {
		_ = cp.Close()
	}
	saved := m.Shutdown(drain)
	if len(saved) > 0 {
		fmt.Printf("checkpointed before exit: %v\n", saved)
	}
	fmt.Println("master closed")
}

func runDemo(m *harmony.Master, iterations int, sig <-chan os.Signal) error {
	specs := []harmony.Training{
		{
			Name:       "mlr",
			Config:     harmony.TrainingConfig{Algorithm: "mlr", Features: 32, Classes: 4, Rows: 512},
			Iterations: iterations,
			Alpha:      0.3,
			Seed:       1,
		},
		{
			Name:       "lasso",
			Config:     harmony.TrainingConfig{Algorithm: "lasso", Features: 32, Rows: 384, Lambda: 0.02},
			Iterations: iterations,
			Seed:       2,
		},
		{
			Name:       "lda",
			Config:     harmony.TrainingConfig{Algorithm: "lda", Features: 48, Classes: 4, Rows: 256},
			Iterations: iterations,
			Seed:       3,
		},
	}
	for _, s := range specs {
		if err := m.Submit(s); err != nil {
			return err
		}
		fmt.Printf("submitted %s (%s)\n", s.Name, s.Config.Algorithm)
	}
	done := make(chan error, 1)
	go func() {
		for _, s := range specs {
			if err := m.Wait(s.Name, 10*time.Minute); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			return err
		}
	case <-sig:
		fmt.Println("signal received during demo, shutting down")
		return nil
	}
	for _, s := range specs {
		iter, loss, _, err := m.Progress(s.Name)
		if err != nil {
			return err
		}
		prof, _ := m.ProfiledJob(s.Name)
		fmt.Printf("%-6s finished at iteration %d, loss %.4f, profiled comp/comm %.1f/%.1f ms\n",
			s.Name, iter, loss, prof.CompSeconds*1000, prof.NetSeconds*1000)
	}
	cpu, net, err := m.Utilization()
	if err == nil {
		fmt.Printf("worker executors: CPU %.0f%%, network %.0f%%\n", cpu*100, net*100)
	}
	return nil
}
