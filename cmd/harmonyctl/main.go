// harmonyctl drives a live harmony-master through its HTTP control
// plane: submit jobs into the online admission queue, inspect job and
// cluster status, and cancel work.
//
//	harmonyctl [-addr http://127.0.0.1:8080] <command> [flags]
//
// Commands:
//
//	submit   submit a job (admitted by the §IV-B4 arrival rule or held pending)
//	jobs     list all jobs
//	status   show one job
//	cancel   cancel a pending or running job
//	cluster  show workers, groups and the admission queue
//	queues   show fair-scheduler queues: shares, quotas, usage, depth
//	events   show the scheduler decision journal (predicted vs measured T_itr/U)
//	snapshot capture the master's full state (-o snap.json; replay with harmony-sim -replay)
//	replay   self-replay the decision journal server-side, print the drift report
//	trace    fetch the Chrome trace-event JSON (-o trace.json; load in Perfetto)
//	ps-stats show per-stripe parameter-server load (what the rebalancer sees)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"harmony/internal/ctl"
	"harmony/internal/ps"
	"harmony/internal/replay"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "harmonyctl:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: harmonyctl [-addr URL] {submit|jobs|status|cancel|cluster|queues|events|snapshot|replay|trace|ps-stats} [flags]")
}

func run(args []string) error {
	fs := flag.NewFlagSet("harmonyctl", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "control-plane base URL")
	timeout := fs.Duration("timeout", 10*time.Second, "request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return usage()
	}
	c := &client{base: strings.TrimRight(*addr, "/"), hc: &http.Client{Timeout: *timeout}}
	cmd, rest := rest[0], rest[1:]
	switch cmd {
	case "submit":
		return cmdSubmit(c, rest)
	case "jobs":
		return cmdJobs(c)
	case "status":
		if len(rest) != 1 {
			return fmt.Errorf("usage: harmonyctl status <name>")
		}
		return cmdStatus(c, rest[0])
	case "cancel":
		if len(rest) != 1 {
			return fmt.Errorf("usage: harmonyctl cancel <name>")
		}
		return cmdCancel(c, rest[0])
	case "cluster":
		return cmdCluster(c)
	case "queues":
		return cmdQueues(c)
	case "events":
		return cmdEvents(c, rest)
	case "snapshot":
		return cmdSnapshot(c, rest)
	case "replay":
		return cmdReplay(c, rest)
	case "trace":
		return cmdTrace(c, rest)
	case "ps-stats":
		return cmdPSStats(c, rest)
	default:
		return usage()
	}
}

type client struct {
	base string
	hc   *http.Client
}

// do issues the request and decodes the JSON response into out,
// surfacing the API's structured errors as Go errors.
func (c *client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e ctl.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error.Message != "" {
			return fmt.Errorf("%s (%s)", e.Error.Message, e.Error.Code)
		}
		return fmt.Errorf("%s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// raw fetches a path and returns the response body verbatim, for
// endpoints whose payload is passed through rather than rendered
// (/v1/trace).
func (c *client) raw(path string) ([]byte, error) {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func cmdSubmit(c *client, args []string) error {
	fs := flag.NewFlagSet("harmonyctl submit", flag.ContinueOnError)
	name := fs.String("name", "", "job name (required)")
	algo := fs.String("algo", "mlr", "algorithm: mlr, lasso, nmf or lda")
	features := fs.Int("features", 0, "feature count (0 = default)")
	classes := fs.Int("classes", 0, "classes / rank / topics (0 = default)")
	rows := fs.Int("rows", 0, "training rows (0 = default)")
	lr := fs.Float64("lr", 0, "learning rate (0 = default)")
	lambda := fs.Float64("lambda", 0, "lasso L1 penalty (0 = default)")
	iters := fs.Int("iterations", 20, "iterations until convergence")
	alpha := fs.Float64("alpha", 0, "initial disk-spill ratio in [0, 1]")
	seed := fs.Int64("seed", 1, "data-generation seed")
	queue := fs.String("queue", "", "fair-scheduler queue (empty = default)")
	priority := fs.Int("priority", 0, "priority within the queue (higher first)")
	minWorkers := fs.Int("min-workers", 0, "gang size: the full set places atomically or the job holds")
	maxWorkers := fs.Int("max-workers", 0, "placement size cap (0 = no cap)")
	workersCSV := fs.String("workers", "", "comma-separated worker names to pin the job (bypasses admission)")
	comp := fs.Float64("comp", 0, "profile hint: COMP machine-seconds per iteration")
	netSec := fs.Float64("net", 0, "profile hint: COMM seconds per iteration")
	inputGB := fs.Float64("input-gb", 0, "profile hint: input size in GB")
	modelGB := fs.Float64("model-gb", 0, "profile hint: model size in GB")
	workGB := fs.Float64("work-gb", 0, "profile hint: working memory in GB")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("submit: -name is required")
	}
	req := ctl.SubmitRequest{
		Name: *name, Algorithm: *algo,
		Features: *features, Classes: *classes, Rows: *rows,
		LearningRate: *lr, Lambda: *lambda,
		Iterations: *iters, Alpha: *alpha, Seed: *seed,
		Queue: *queue, Priority: *priority,
		MinWorkers: *minWorkers, MaxWorkers: *maxWorkers,
	}
	if *workersCSV != "" {
		req.Workers = strings.Split(*workersCSV, ",")
	}
	if *comp > 0 || *netSec > 0 || *inputGB > 0 || *modelGB > 0 || *workGB > 0 {
		req.Profile = &ctl.ProfileHints{
			CompSeconds: *comp, NetSeconds: *netSec,
			InputGB: *inputGB, ModelGB: *modelGB, WorkGB: *workGB,
		}
	}
	var resp ctl.SubmitResponse
	if err := c.do(http.MethodPost, "/v1/jobs", req, &resp); err != nil {
		return err
	}
	switch resp.State {
	case "running":
		fmt.Printf("%s admitted, running on %s\n", resp.Name, strings.Join(resp.Workers, ","))
	default:
		fmt.Printf("%s held pending in the admission queue\n", resp.Name)
	}
	return nil
}

// cmdQueues renders the fair-scheduler surface: each queue's resolved
// share, quota and usage in workers, held depth, and cumulative
// admission/preemption counters.
func cmdQueues(c *client) error {
	var resp ctl.QueuesResponse
	if err := c.do(http.MethodGet, "/v1/queues", nil, &resp); err != nil {
		return err
	}
	if len(resp.Queues) == 0 {
		fmt.Println("no queues")
		return nil
	}
	fmt.Printf("%-16s %-12s %6s %6s %6s %6s %6s %6s %9s %10s\n",
		"QUEUE", "PARENT", "SHARE", "QUOTA", "USAGE", "RUN", "DEPTH", "ADMIT", "PREEMPTED", "CANCELED")
	for _, q := range resp.Queues {
		fmt.Printf("%-16s %-12s %5.1f%% %6d %6d %6d %6d %6d %9d %10d\n",
			q.Name, q.Parent, q.Share*100, q.QuotaWorkers, q.UsageWorkers,
			q.Running, q.Depth, q.Admitted, q.Preempted, q.Canceled)
	}
	return nil
}

func cmdJobs(c *client) error {
	var resp ctl.JobListResponse
	if err := c.do(http.MethodGet, "/v1/jobs", nil, &resp); err != nil {
		return err
	}
	if len(resp.Jobs) == 0 {
		fmt.Println("no jobs")
		return nil
	}
	fmt.Printf("%-20s %-10s %9s %12s %8s  %s\n",
		"NAME", "STATE", "ITERATION", "LOSS", "PROFILED", "WORKERS")
	for _, j := range resp.Jobs {
		fmt.Printf("%-20s %-10s %9d %12.4f %8v  %s\n",
			j.Name, j.State, j.Iteration, j.Loss, j.Profiled, strings.Join(j.Workers, ","))
	}
	return nil
}

func cmdStatus(c *client, name string) error {
	var j ctl.JobResponse
	if err := c.do(http.MethodGet, "/v1/jobs/"+name, nil, &j); err != nil {
		return err
	}
	fmt.Printf("name:        %s\n", j.Name)
	fmt.Printf("state:       %s\n", j.State)
	if j.Queue != "" {
		fmt.Printf("queue:       %s (priority %d)\n", j.Queue, j.Priority)
	}
	if j.State == "pending" {
		// A held job is distinguishable from a stuck one: why it waits
		// and where it stands in the fair admission order.
		fmt.Printf("hold:        %s (position %d in queue)\n", holdText(j.HoldReason), j.QueuePosition)
		if j.Resumable {
			fmt.Printf("resumable:   from checkpoint iteration %d\n", j.ResumeIteration-1)
		}
	}
	fmt.Printf("iteration:   %d\n", j.Iteration)
	fmt.Printf("loss:        %.6f\n", j.Loss)
	fmt.Printf("workers:     %s\n", strings.Join(j.Workers, ","))
	fmt.Printf("profiled:    %v (comp %.3fs, net %.3fs)\n", j.Profiled, j.CompSeconds, j.NetSeconds)
	fmt.Printf("checkpoint:  iteration %d\n", j.CheckpointIteration)
	return nil
}

// holdText expands a hold-reason code into an operator-readable phrase.
func holdText(reason string) string {
	switch reason {
	case "slowdown_bound":
		return "slowdown_bound (no placement improves the Eq. 1 scheduling score)"
	case "no_gang_capacity":
		return "no_gang_capacity (no feasible worker set of the gang size)"
	case "quota_exhausted":
		return "quota_exhausted (queue at quota while an under-quota queue waits)"
	case "preempted":
		return "preempted (reclaimed; resumes from its checkpoint)"
	case "":
		return "unknown"
	}
	return reason
}

func cmdCancel(c *client, name string) error {
	if err := c.do(http.MethodDelete, "/v1/jobs/"+name, nil, nil); err != nil {
		return err
	}
	fmt.Printf("%s canceled\n", name)
	return nil
}

// cmdEvents prints the scheduler decision journal: one line per
// decision with the model's predicted T_itr/U beside the measured
// values, so prediction error is visible per decision. -since polls
// incrementally from a sequence number; -kind filters one decision kind.
func cmdEvents(c *client, args []string) error {
	fs := flag.NewFlagSet("harmonyctl events", flag.ContinueOnError)
	since := fs.Uint64("since", 0, "only events after this sequence number")
	kind := fs.String("kind", "", "only events of this kind (e.g. admit_arrival, hold, migrate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := "/v1/events"
	q := url.Values{}
	if *since > 0 {
		q.Set("since", strconv.FormatUint(*since, 10))
	}
	if *kind != "" {
		q.Set("kind", *kind)
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var resp ctl.EventsResponse
	if err := c.do(http.MethodGet, path, nil, &resp); err != nil {
		return err
	}
	if len(resp.Events) == 0 {
		fmt.Println("no events")
		return nil
	}
	fmt.Printf("%4s %-8s %-14s %-16s %10s %10s %12s %12s  %s\n",
		"SEQ", "TIME", "KIND", "JOB", "PRED_TITR", "MEAS_TITR", "PRED_U", "MEAS_U", "GROUP/NOTE")
	for _, e := range resp.Events {
		detail := strings.Join(e.Group, ",")
		if e.Note != "" {
			if detail != "" {
				detail += " — "
			}
			detail += e.Note
		}
		fmt.Printf("%4d %-8s %-14s %-16s %10s %10s %12s %12s  %s\n",
			e.Seq, e.Time.Format("15:04:05"), e.Kind, e.Job,
			fmtSeconds(e.PredictedIterSeconds), fmtSeconds(e.MeasuredIterSeconds),
			fmtUtil(e.PredictedCPUUtil, e.PredictedNetUtil),
			fmtUtil(e.MeasuredCPUUtil, e.MeasuredNetUtil),
			detail)
	}
	return nil
}

// fmtSeconds renders an iteration time, blank when unmeasured.
func fmtSeconds(s float64) string {
	if s == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fms", s*1000)
}

// fmtUtil renders a (cpu, net) utilization pair, blank when unmodeled.
func fmtUtil(cpu, net float64) string {
	if cpu == 0 && net == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%/%.0f%%", cpu*100, net*100)
}

// cmdSnapshot captures the master's full state — plan, jobs, queues,
// profiles, PS placement, decision journal — as a versioned JSON
// document replayable with `harmony-sim -replay`.
func cmdSnapshot(c *client, args []string) error {
	fs := flag.NewFlagSet("harmonyctl snapshot", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	body, err := c.raw("/v1/snapshot")
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(body)
		return err
	}
	if err := os.WriteFile(*out, body, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d bytes to %s (replay with: harmony-sim -replay %s)\n",
		len(body), *out, *out)
	return nil
}

// cmdReplay asks the master to self-replay its decision journal and
// prints the calibration summary; the full report lands on /metrics as
// harmony_model_error_ratio gauges and is printed with -v.
func cmdReplay(c *client, args []string) error {
	fs := flag.NewFlagSet("harmonyctl replay", flag.ContinueOnError)
	machines := fs.Int("machines", 0, "what-if cluster size (0 = as captured)")
	queues := fs.String("queues", "", "what-if queue policy (e.g. 'prod:quota=0.7;dev:weight=1')")
	netModel := fs.String("net-model", "", "what-if net model: on or off (empty = as captured)")
	verbose := fs.Bool("v", false, "print the full JSON report instead of the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	req := ctl.ReplayRequest{Machines: *machines, Queues: *queues}
	switch *netModel {
	case "":
	case "on", "off":
		v := *netModel == "on"
		req.NetModel = &v
	default:
		return fmt.Errorf("replay: -net-model must be on or off")
	}
	var rep replay.Report
	if err := c.do(http.MethodPost, "/v1/replay", req, &rep); err != nil {
		return err
	}
	if *verbose {
		b, err := rep.Encode()
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(b)
		return err
	}
	fmt.Printf("replayed %d events (%d modeled, %d with measurements) on %d machines\n",
		rep.Overall.Events, rep.Overall.Modeled, rep.Overall.Measured, rep.Machines)
	fmt.Printf("mean prediction error: %.1f%%   replay error: %.1f%%   drift: %.1f%%\n",
		rep.Overall.MeanIterErrRatio*100, rep.Overall.MeanReplayErrRatio*100,
		rep.Overall.MeanDriftRatio*100)
	for _, g := range rep.Groups {
		fmt.Printf("  group=[%s] kind=%s decisions=%d err=%.1f%% drift=%.1f%%\n",
			g.Group, g.Kind, g.Decisions, g.MeanIterErrRatio*100, g.MeanDriftRatio*100)
	}
	if rep.WhatIf != nil {
		fmt.Printf("what-if: machines=%d holds_lifted=%d admits_gated=%d\n",
			rep.WhatIf.Machines, rep.WhatIf.HoldsLifted, rep.WhatIf.AdmitsGated)
	}
	for _, sk := range rep.Skipped {
		fmt.Printf("  skipped: %s\n", sk)
	}
	return nil
}

// cmdTrace saves the cluster's Chrome trace-event JSON; open the file at
// https://ui.perfetto.dev to see COMP/PULL/PUSH/barrier spans per
// machine and resource track.
func cmdTrace(c *client, args []string) error {
	fs := flag.NewFlagSet("harmonyctl trace", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	body, err := c.raw("/v1/trace")
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(body)
		return err
	}
	if err := os.WriteFile(*out, body, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d bytes to %s (load in https://ui.perfetto.dev)\n", len(body), *out)
	return nil
}

// cmdPSStats renders per-stripe parameter-server load: the counters the
// hot-stripe rebalancer plans from, hottest stripes first.
func cmdPSStats(c *client, args []string) error {
	fs := flag.NewFlagSet("harmonyctl ps-stats", flag.ContinueOnError)
	top := fs.Int("top", 20, "show the N hottest stripes (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var cs ps.ClusterStats
	if err := c.do(http.MethodGet, "/v1/ps", nil, &cs); err != nil {
		return err
	}
	type row struct {
		server string
		job    string
		st     ps.StripeStat
	}
	var rows []row
	for _, srv := range cs.Servers {
		for _, js := range srv.Jobs {
			for _, st := range js.Stripes {
				rows = append(rows, row{server: srv.Name, job: js.Job, st: st})
			}
		}
	}
	if len(rows) == 0 {
		fmt.Println("no stripes")
		return nil
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].st.Ops() > rows[j].st.Ops() })
	if *top > 0 && len(rows) > *top {
		rows = rows[:*top]
	}
	fmt.Printf("%-12s %-16s %7s %5s %8s %8s %10s %10s %12s %5s\n",
		"SERVER", "JOB", "STRIPE", "ROLE", "PULLS", "PUSHES", "PULL_B", "PUSH_B", "LOCK_WAIT", "REPL")
	for _, r := range rows {
		role := "repl"
		if r.st.Primary {
			role = "prim"
		}
		fmt.Printf("%-12s %-16s %7d %5s %8d %8d %10d %10d %11.3fs %5d\n",
			r.server, r.job, r.st.Index, role, r.st.PullOps, r.st.PushOps,
			r.st.PullBytes, r.st.PushBytes, r.st.LockWaitSeconds, r.st.Replicas)
	}
	return nil
}

func cmdCluster(c *client) error {
	var resp ctl.ClusterResponse
	if err := c.do(http.MethodGet, "/v1/cluster", nil, &resp); err != nil {
		return err
	}
	fmt.Printf("workers (%d): %s\n", len(resp.Workers), strings.Join(resp.Workers, ","))
	if len(resp.Groups) == 0 {
		fmt.Println("groups: none (cluster idle)")
	}
	for i, g := range resp.Groups {
		fmt.Printf("group %d: workers=[%s] jobs=[%s]\n",
			i, strings.Join(g.Workers, ","), strings.Join(g.Jobs, ","))
	}
	if len(resp.Pending) > 0 {
		fmt.Printf("pending (%d): %s\n", len(resp.Pending), strings.Join(resp.Pending, ","))
	} else {
		fmt.Println("pending: none")
	}
	return nil
}
