// Package harmony is a Go reproduction of "Harmony: A Scheduling
// Framework Optimized for Multiple Distributed Machine Learning Jobs"
// (ICDCS 2021).
//
// Harmony co-locates Parameter-Server ML training jobs with complementary
// resource usage on a shared cluster, multiplexes their computation and
// communication subtasks to keep CPUs and links busy simultaneously, and
// relieves the resulting memory pressure by spilling and reloading input
// blocks.
//
// The package exposes three layers:
//
//   - the scheduler: the performance model and grouping algorithm of the
//     paper (Schedule, Plan) — pure functions over profiled job metrics;
//   - the simulator: full executions of workloads on a modelled cluster
//     under Harmony or the paper's baseline schedulers (Simulate);
//   - the live runtime: a real master/worker Parameter-Server system over
//     TCP that trains the paper's four ML applications with subtask
//     multiplexing (StartMaster, StartWorker).
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for how every
// table and figure of the paper maps onto this repository.
package harmony

import (
	"fmt"
	"time"

	"harmony/internal/core"
	"harmony/internal/metrics"
	"harmony/internal/mlapp"
	"harmony/internal/sim"
	"harmony/internal/simtime"
	"harmony/internal/workload"
)

// Job is the scheduler's view of one training job: its identity and
// profiled per-iteration costs (§IV-B1 of the paper).
type Job struct {
	// ID uniquely names the job.
	ID string
	// CompSeconds is the aggregate computation cost of one iteration in
	// machine-seconds; at a degree of parallelism m the COMP subtask
	// takes CompSeconds/m (Eq. 2).
	CompSeconds float64
	// NetSeconds is the per-machine communication (PULL+PUSH) time of
	// one iteration.
	NetSeconds float64
	// InputGB, ModelGB and WorkGB parameterize memory feasibility
	// checks; zero values disable them.
	InputGB, ModelGB, WorkGB float64
}

// Group is a set of co-located jobs sharing Machines machines.
type Group struct {
	Jobs     []Job
	Machines int
	// PredictedIterSeconds is the modelled group iteration time (Eq. 1).
	PredictedIterSeconds float64
	// CPUUtil and NetUtil are the modelled utilizations (Eq. 3).
	CPUUtil, NetUtil float64
}

// Plan is a complete scheduling decision.
type Plan struct {
	Groups []Group
	// CPUUtil and NetUtil are the machine-weighted cluster utilizations
	// (Eq. 4).
	CPUUtil, NetUtil float64
}

// ScheduleOptions tune the grouping algorithm; the zero value uses the
// paper's defaults (CPU-preferring score, 5% regrouping threshold).
type ScheduleOptions struct {
	// CPUWeight weights CPU utilization in the objective (default 0.7).
	CPUWeight float64
	// MemoryCapGB bounds a group's per-machine footprint with inputs
	// fully spilled; zero disables the check.
	MemoryCapGB float64
	// MaxJobsPerGroup caps co-location degree; zero means unlimited.
	MaxJobsPerGroup int
	// Parallelism bounds the worker pool of the candidate search; zero
	// uses GOMAXPROCS, 1 runs single-threaded. The returned plan is
	// identical at any setting (DESIGN.md §6).
	Parallelism int
}

func (o ScheduleOptions) internal() core.Options {
	return core.Options{
		CPUWeight:       o.CPUWeight,
		MemoryCapGB:     o.MemoryCapGB,
		MaxJobsPerGroup: o.MaxJobsPerGroup,
		Parallelism:     o.Parallelism,
	}
}

// Schedule runs the paper's Algorithm 1: it groups jobs with
// complementary resource usage and allocates machines so that cluster
// utilization is maximized. Jobs beyond the utilization-optimal prefix
// are left out of the plan (they wait).
func Schedule(jobs []Job, machines int, opts ScheduleOptions) Plan {
	infos := make([]core.JobInfo, len(jobs))
	for i, j := range jobs {
		infos[i] = core.JobInfo{
			ID: j.ID, Comp: j.CompSeconds, Net: j.NetSeconds,
			InputGB: j.InputGB, ModelGB: j.ModelGB, WorkGB: j.WorkGB,
			JVMHeapFactor: workload.JVMHeapFactor,
		}
	}
	plan := core.Schedule(infos, machines, opts.internal())
	return fromInternalPlan(plan)
}

func fromInternalPlan(p core.Plan) Plan {
	var out Plan
	for _, g := range p.Groups {
		jobs := make([]Job, len(g.Jobs))
		for i, j := range g.Jobs {
			jobs[i] = Job{
				ID: j.ID, CompSeconds: j.Comp, NetSeconds: j.Net,
				InputGB: j.InputGB, ModelGB: j.ModelGB, WorkGB: j.WorkGB,
			}
		}
		uc, un := g.Util()
		out.Groups = append(out.Groups, Group{
			Jobs:                 jobs,
			Machines:             g.Machines,
			PredictedIterSeconds: g.IterSeconds(),
			CPUUtil:              uc,
			NetUtil:              un,
		})
	}
	out.CPUUtil, out.NetUtil = p.Util()
	return out
}

// Scheduler selects the scheduling regime for simulations.
type Scheduler int

// Schedulers compared in the paper's evaluation (§V-A).
const (
	// HarmonyScheduler is the full system: subtask pipelining, dynamic
	// grouping and dynamic data reloading.
	HarmonyScheduler Scheduler = iota + 1
	// IsolatedScheduler dedicates machines per job (Optimus/SLAQ-like).
	IsolatedScheduler
	// NaiveScheduler co-locates without coordination (Gandiva-like).
	NaiveScheduler
)

// WorkloadJob describes one job for simulation: a cost profile plus a
// convergence length and an arrival time.
type WorkloadJob struct {
	Job
	// Iterations until convergence.
	Iterations int
	// Arrival is the submission offset from the simulation start.
	Arrival time.Duration
	// PullFraction splits NetSeconds into PULL and PUSH (default 0.5).
	PullFraction float64
}

// SimConfig parameterizes a simulated execution.
type SimConfig struct {
	// Machines is the cluster size (m4.2xlarge-shaped machines).
	Machines int
	// Scheduler picks the regime; default HarmonyScheduler.
	Scheduler Scheduler
	// Seed drives all randomness.
	Seed int64
	// Options tunes Harmony's grouping.
	Options ScheduleOptions
}

// SimReport summarizes a simulated execution.
type SimReport struct {
	// MeanJCT is the average job completion time.
	MeanJCT time.Duration
	// Makespan is the time to finish all jobs.
	Makespan time.Duration
	// CPUUtil and NetUtil are mean cluster utilizations.
	CPUUtil, NetUtil float64
	// Finished and Failed count outcomes (failures are out-of-memory
	// kills, §II-B).
	Finished, Failed int
	// MeanConcurrentJobs and MeanGroups are time-averaged (§V-C).
	MeanConcurrentJobs, MeanGroups float64
	// CPUSeries and NetSeries are per-minute utilization samples
	// (Fig. 11).
	CPUSeries, NetSeries []float64
}

// Simulate executes the workload on the modelled cluster and reports the
// paper's evaluation metrics.
func Simulate(cfg SimConfig, jobs []WorkloadJob) (*SimReport, error) {
	mode := sim.ModeHarmony
	switch cfg.Scheduler {
	case 0, HarmonyScheduler:
	case IsolatedScheduler:
		mode = sim.ModeIsolated
	case NaiveScheduler:
		mode = sim.ModeNaive
	default:
		return nil, fmt.Errorf("harmony: unknown scheduler %d", int(cfg.Scheduler))
	}
	simJobs := make([]sim.Job, len(jobs))
	for i, j := range jobs {
		pull := j.PullFraction
		if pull <= 0 || pull >= 1 {
			pull = 0.5
		}
		simJobs[i] = sim.Job{
			Spec: workload.Spec{
				ID:                 j.ID,
				App:                workload.MLR, // cost profile is what matters
				Data:               workload.Dataset{Name: j.ID, InputGB: j.InputGB, ModelGB: j.ModelGB},
				Hyper:              "custom",
				CompMachineSeconds: j.CompSeconds,
				NetSeconds:         j.NetSeconds,
				PullFrac:           pull,
				Iterations:         j.Iterations,
				WorkGB:             j.WorkGB,
			},
			Arrival: simtime.Time(simtime.FromStd(j.Arrival)),
		}
	}
	res, err := sim.Run(sim.Config{
		Machines:  cfg.Machines,
		Mode:      mode,
		Seed:      cfg.Seed,
		SchedOpts: cfg.Options.internal(),
	}, simJobs)
	if err != nil {
		return nil, err
	}
	report := &SimReport{
		MeanJCT:            res.Summary.MeanJCT.Std(),
		Makespan:           res.Summary.Makespan.Std(),
		CPUUtil:            res.Summary.CPUUtil,
		NetUtil:            res.Summary.NetUtil,
		Finished:           len(res.Records),
		Failed:             len(res.Failed),
		MeanConcurrentJobs: res.MeanConcurrentJobs,
		MeanGroups:         res.MeanGroups,
	}
	if res.Util != nil {
		report.CPUSeries = res.Util.Series(metrics.CPU)
		report.NetSeries = res.Util.Series(metrics.Net)
	}
	return report, nil
}

// PaperWorkload returns the 80-job evaluation workload of the paper
// (Table I crossed with ten hyper-parameters, §V-B), as simulation jobs
// submitted at time zero.
func PaperWorkload() []WorkloadJob {
	return fromSpecs(workload.Base())
}

// SmallWorkload returns n jobs drawn from the paper workload with
// interleaved applications — handy for quick experiments.
func SmallWorkload(n int) []WorkloadJob {
	return fromSpecs(workload.Small(n))
}

func fromSpecs(specs []workload.Spec) []WorkloadJob {
	out := make([]WorkloadJob, len(specs))
	for i, s := range specs {
		out[i] = WorkloadJob{
			Job: Job{
				ID:          s.ID,
				CompSeconds: s.CompMachineSeconds,
				NetSeconds:  s.NetSeconds,
				InputGB:     s.Data.InputGB,
				ModelGB:     s.Data.ModelGB,
				WorkGB:      s.WorkGB,
			},
			Iterations:   s.Iterations,
			PullFraction: s.PullFrac,
		}
	}
	return out
}

// TrainingConfig sizes a live training job for the runtime (real
// Parameter-Server training of the paper's applications on synthetic
// data).
type TrainingConfig struct {
	// Algorithm is one of "mlr", "lasso", "nmf", "lda".
	Algorithm string
	// Features, Classes and Rows size the synthetic problem.
	Features, Classes, Rows int
	// LearningRate scales updates; Lambda is Lasso's L1 penalty.
	LearningRate, Lambda float64
}

func (c TrainingConfig) internal() (mlapp.Config, error) {
	kind, err := mlapp.ParseKind(c.Algorithm)
	if err != nil {
		return mlapp.Config{}, fmt.Errorf("harmony: unknown algorithm %q", c.Algorithm)
	}
	return mlapp.Config{
		Kind: kind, Features: c.Features, Classes: c.Classes, Rows: c.Rows,
		LearningRate: c.LearningRate, Lambda: c.Lambda,
	}, nil
}
